"""Whole-device timing model.

Kernel latency is modelled with a roofline: the kernel is either bound by
the Tensor-Core (or CUDA-core) compute stream or by DRAM traffic, plus a
fixed launch/drain overhead.  The per-method kernel models in
:mod:`repro.kernels` compute the two inputs (compute cycles and traffic)
and hand them to this class.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.hw.config import GpuConfig, V100_CONFIG
from repro.hw.memory import MemorySystem, TrafficBreakdown


@dataclass(frozen=True)
class KernelTiming:
    """Latency breakdown of one kernel invocation.

    Attributes:
        compute_cycles: cycles of the compute stream at full occupancy.
        memory_cycles: cycles needed to move the DRAM traffic.
        overhead_cycles: fixed launch / drain / synchronisation cycles.
        total_cycles: modelled kernel latency in cycles.
        time_us: modelled kernel latency in microseconds.
        bound: ``"compute"`` or ``"memory"`` — which roofline applies.
    """

    compute_cycles: float
    memory_cycles: float
    overhead_cycles: float
    total_cycles: float
    time_us: float
    bound: str


class GpuTimingModel:
    """Converts per-kernel compute and traffic estimates into latency."""

    #: Fixed kernel launch + pipeline drain overhead, in cycles.
    DEFAULT_OVERHEAD_CYCLES = 2000.0

    def __init__(self, config: GpuConfig | None = None) -> None:
        self.config = config or V100_CONFIG
        self.memory = MemorySystem(self.config)

    # ------------------------------------------------------------------ #
    # Compute-cycle helpers
    # ------------------------------------------------------------------ #
    def dense_tensor_core_cycles(
        self, m: int, n: int, k: int, efficiency: float = 0.75
    ) -> float:
        """Cycles for a dense M x N x K GEMM on the Tensor Cores.

        ``efficiency`` captures scheduling, tail and occupancy losses of a
        well-tuned library kernel (CUTLASS achieves roughly 70-85% of the
        Tensor-Core peak on large GEMMs).
        """
        self._check_efficiency(efficiency)
        macs = float(m) * float(n) * float(k)
        return macs / (self.config.tensor_macs_per_cycle * efficiency)

    def ohmma_cycles(self, num_ohmma: float, efficiency: float = 0.75) -> float:
        """Cycles to issue ``num_ohmma`` OHMMA.8161 instructions device-wide.

        Each sub-core issues one OHMMA per cycle, so the device retires
        ``ohmma_slots_per_cycle`` of them per cycle at perfect occupancy.
        """
        self._check_efficiency(efficiency)
        if num_ohmma < 0:
            raise ConfigError("num_ohmma must be non-negative")
        return num_ohmma / (self.config.ohmma_slots_per_cycle * efficiency)

    def scalar_core_cycles(self, flops: float, efficiency: float = 0.4) -> float:
        """Cycles for ``flops`` floating-point operations on the CUDA cores.

        Used by the cuSparse baseline, which cannot use Tensor Cores; the
        lower default efficiency reflects the irregular control flow of
        sparse kernels.
        """
        self._check_efficiency(efficiency)
        if flops < 0:
            raise ConfigError("flops must be non-negative")
        return flops / (2.0 * self.config.cuda_fma_per_cycle * efficiency)

    # ------------------------------------------------------------------ #
    # Roofline combination
    # ------------------------------------------------------------------ #
    def time_kernel(
        self,
        compute_cycles: float,
        traffic: TrafficBreakdown | float,
        overhead_cycles: float | None = None,
    ) -> KernelTiming:
        """Combine compute and memory into a kernel latency estimate.

        Args:
            compute_cycles: cycles of the compute stream.
            traffic: DRAM traffic (a :class:`TrafficBreakdown` or raw
                bytes).
            overhead_cycles: fixed overhead; defaults to
                :data:`DEFAULT_OVERHEAD_CYCLES`.
        """
        if compute_cycles < 0:
            raise ConfigError("compute_cycles must be non-negative")
        if overhead_cycles is None:
            overhead_cycles = self.DEFAULT_OVERHEAD_CYCLES
        if isinstance(traffic, TrafficBreakdown):
            total_bytes = traffic.total_bytes
        else:
            total_bytes = float(traffic)
        memory_cycles = self.memory.dram_cycles(total_bytes)
        bound = "compute" if compute_cycles >= memory_cycles else "memory"
        total = max(compute_cycles, memory_cycles) + overhead_cycles
        return KernelTiming(
            compute_cycles=compute_cycles,
            memory_cycles=memory_cycles,
            overhead_cycles=overhead_cycles,
            total_cycles=total,
            time_us=self.config.cycles_to_us(total),
            bound=bound,
        )

    @staticmethod
    def _check_efficiency(efficiency: float) -> None:
        if not 0.0 < efficiency <= 1.0:
            raise ConfigError(f"efficiency must be in (0, 1], got {efficiency}")
