"""Roofline-style memory system model.

The kernel cost models account for DRAM traffic explicitly (operand
loads in dense or compressed format, output write-back) and convert it
to cycles at the configured bandwidth.  On-chip reuse is captured by the
*reuse factor* each kernel chooses for its operands — e.g. a CUTLASS-like
tiled GEMM streams each input roughly ``output_tiles_along_the_other_dim``
times through L2 but only once from DRAM when the working set blocks
nicely, which is the behaviour modelled here.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.hw.config import GpuConfig, V100_CONFIG


@dataclass(frozen=True)
class TrafficBreakdown:
    """DRAM traffic of one kernel invocation, in bytes.

    Attributes:
        a_bytes: bytes read for the left operand (or feature map).
        b_bytes: bytes read for the right operand (or weights).
        metadata_bytes: bytes read for sparse metadata (bitmaps, indices).
        output_bytes: bytes written for the result.
    """

    a_bytes: float = 0.0
    b_bytes: float = 0.0
    metadata_bytes: float = 0.0
    output_bytes: float = 0.0

    @property
    def total_bytes(self) -> float:
        """Total DRAM traffic in bytes."""
        return self.a_bytes + self.b_bytes + self.metadata_bytes + self.output_bytes


class MemorySystem:
    """Converts DRAM / L2 traffic to cycles at the configured bandwidth."""

    def __init__(self, config: GpuConfig | None = None) -> None:
        self.config = config or V100_CONFIG

    def dram_cycles(self, total_bytes: float) -> float:
        """Cycles to move ``total_bytes`` through DRAM."""
        if total_bytes < 0:
            raise ConfigError("traffic must be non-negative")
        return total_bytes / self.config.dram_bytes_per_cycle

    def l2_cycles(self, total_bytes: float) -> float:
        """Cycles to move ``total_bytes`` through the L2 cache."""
        if total_bytes < 0:
            raise ConfigError("traffic must be non-negative")
        return total_bytes / self.config.l2_bytes_per_cycle

    def traffic_cycles(self, traffic: TrafficBreakdown) -> float:
        """DRAM cycles for a full traffic breakdown."""
        return self.dram_cycles(traffic.total_bytes)
