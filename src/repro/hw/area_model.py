"""Area and power overhead estimation (Table IV).

The paper evaluates its added hardware with CACTI 7 at 22 nm (SRAM
structures), RTL estimates (adders, operand collector) and scales the
results to 12 nm with the Stillmaker–Baas scaling equations.  This module
reimplements that methodology as a parameterised analytic model.  The
per-component technology constants are calibrated against the published
component areas so the model reproduces Table IV, and the same model can
then be queried for design-space variations (different buffer sizes, bank
counts or adder widths) in the ablation benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.hw.config import GpuConfig, V100_CONFIG


#: Area scaling factor from 22 nm to 12 nm (Stillmaker & Baas, approx.).
AREA_SCALE_22_TO_12 = 0.36
#: Power scaling factor from 22 nm to 12 nm at constant frequency.
POWER_SCALE_22_TO_12 = 0.52


@dataclass(frozen=True)
class ComponentEstimate:
    """Area / power estimate of one added hardware component."""

    name: str
    area_mm2: float
    power_w: float


@dataclass(frozen=True)
class OverheadReport:
    """Full overhead report corresponding to Table IV.

    Attributes:
        components: per-component estimates.
        total_area_mm2: summed area of the added hardware.
        total_power_w: summed power of the added hardware.
        area_fraction: share of the V100 die area.
        power_fraction: share of the V100 TDP.
    """

    components: tuple[ComponentEstimate, ...]
    total_area_mm2: float
    total_power_w: float
    area_fraction: float
    power_fraction: float

    def as_rows(self) -> list[dict]:
        """Rows of Table IV, ready for printing."""
        rows = [
            {
                "module": component.name,
                "area_mm2": round(component.area_mm2, 3),
                "power_w": round(component.power_w, 2),
            }
            for component in self.components
        ]
        rows.append(
            {
                "module": "Total overhead on V100",
                "area_mm2": round(self.total_area_mm2, 3),
                "power_w": round(self.total_power_w, 2),
            }
        )
        return rows


class AreaPowerModel:
    """CACTI-style analytic area/power model of the added hardware.

    Technology constants (documented below) were calibrated at 22 nm
    against the published component estimates and are scaled to 12 nm
    with :data:`AREA_SCALE_22_TO_12` / :data:`POWER_SCALE_22_TO_12`.
    """

    #: FP32 adder area at 22 nm in mm^2 (synthesised RTL estimate).
    FP32_ADDER_AREA_22NM_MM2 = 8.2e-6
    #: FP32 adder dynamic power at 22 nm in watts at nominal activity.
    FP32_ADDER_POWER_22NM_W = 1.1e-4
    #: Single-ported SRAM area per KiB at 22 nm in mm^2 (CACTI 7, 32 banks).
    SRAM_AREA_PER_KB_22NM_MM2 = 0.02434
    #: SRAM leakage + access power per KiB at 22 nm in watts.
    SRAM_POWER_PER_KB_22NM_W = 1.62e-3
    #: Operand collector (queues + crossbar + control) area per sub-core
    #: at 22 nm in mm^2 (RTL estimate).
    COLLECTOR_AREA_PER_SUBCORE_22NM_MM2 = 0.0131
    #: Operand collector power per sub-core at 22 nm in watts.
    COLLECTOR_POWER_PER_SUBCORE_22NM_W = 2.76e-3

    def __init__(self, config: GpuConfig | None = None) -> None:
        self.config = config or V100_CONFIG

    # ------------------------------------------------------------------ #
    # Component models
    # ------------------------------------------------------------------ #
    @property
    def num_subcores(self) -> int:
        """Number of sub-cores (each gets a buffer, collector and adders)."""
        return self.config.num_sms * self.config.subcores_per_sm

    def adder_count(self) -> int:
        """128-way parallel FP32 accumulation adders per sub-core."""
        return self.num_subcores * 128

    def float_point_adders(self) -> ComponentEstimate:
        """The extra FP32 adders of the multiply–accumulate pipeline."""
        count = self.adder_count()
        area = count * self.FP32_ADDER_AREA_22NM_MM2 * AREA_SCALE_22_TO_12
        power = count * self.FP32_ADDER_POWER_22NM_W * POWER_SCALE_22_TO_12
        return ComponentEstimate("Float Point Adders", area, power)

    def accumulation_operand_collector(self) -> ComponentEstimate:
        """The operand collector added to every accumulation buffer."""
        area = (
            self.num_subcores
            * self.COLLECTOR_AREA_PER_SUBCORE_22NM_MM2
            * AREA_SCALE_22_TO_12
        )
        power = (
            self.num_subcores
            * self.COLLECTOR_POWER_PER_SUBCORE_22NM_W
            * POWER_SCALE_22_TO_12
        )
        return ComponentEstimate("Accumulation Operand Collector", area, power)

    def shared_accumulation_buffer(
        self, buffer_kb: float | None = None
    ) -> ComponentEstimate:
        """The banked accumulation buffer SRAM (4 KiB per sub-core)."""
        if buffer_kb is None:
            buffer_kb = float(self.config.accumulation_buffer_kb)
        if buffer_kb <= 0:
            raise ConfigError("buffer size must be positive")
        total_kb = self.num_subcores * buffer_kb
        area = total_kb * self.SRAM_AREA_PER_KB_22NM_MM2 * AREA_SCALE_22_TO_12
        power = total_kb * self.SRAM_POWER_PER_KB_22NM_W * POWER_SCALE_22_TO_12
        return ComponentEstimate("Shared Accumulation Buffer", area, power)

    # ------------------------------------------------------------------ #
    # Full report
    # ------------------------------------------------------------------ #
    def report(self, buffer_kb: float | None = None) -> OverheadReport:
        """Produce the full Table IV overhead report."""
        components = (
            self.float_point_adders(),
            self.accumulation_operand_collector(),
            self.shared_accumulation_buffer(buffer_kb),
        )
        total_area = sum(component.area_mm2 for component in components)
        total_power = sum(component.power_w for component in components)
        return OverheadReport(
            components=components,
            total_area_mm2=total_area,
            total_power_w=total_power,
            area_fraction=total_area / self.config.die_area_mm2,
            power_fraction=total_power / self.config.tdp_w,
        )
