"""Behavioural models of prior sparse Tensor Core designs.

Two single-side (weight-only) sparse Tensor Cores serve as baselines in
the evaluation:

* the **A100 structured-sparse Tensor Core** (2:4 pruning, 50% weight
  sparsity), and
* the **vector-wise Sparse Tensor Core** of Zhu et al. [72], which prunes
  each weight vector to a fixed ratio (up to 75%) and uses CSR-like
  offsets to feed the dot-product units.

Both exploit only the statically pruned operand: activation sparsity is
invisible to them.  Their throughput model is a fixed decode/imbalance
overhead on top of the ideal ``1 / (1 - exploited sparsity)`` speedup,
calibrated so the vector-wise design reproduces the constant 1.86x GEMM
speedup over CUTLASS that the paper measures (Figure 21).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.utils.validation import check_probability


@dataclass(frozen=True)
class SingleSideSparseTensorCore:
    """Generic single-side (weight-sparsity-only) sparse Tensor Core.

    Attributes:
        supported_ratios: structured pruning ratios the hardware supports;
            the largest ratio not exceeding the actual weight sparsity is
            the one exploited.
        decode_overhead: fraction of the dense execution time spent on
            metadata decode, operand shuffling and load imbalance,
            independent of sparsity.
    """

    supported_ratios: tuple[float, ...]
    decode_overhead: float

    def exploited_sparsity(self, weight_sparsity: float) -> float:
        """Largest supported pruning ratio not exceeding the weight sparsity."""
        check_probability(weight_sparsity, "weight_sparsity")
        usable = [r for r in self.supported_ratios if r <= weight_sparsity + 1e-9]
        return max(usable) if usable else 0.0

    def relative_time(self, weight_sparsity: float) -> float:
        """Execution time relative to the dense Tensor Core (lower is better)."""
        exploited = self.exploited_sparsity(weight_sparsity)
        return (1.0 - exploited) + self.decode_overhead

    def speedup_over_dense(self, weight_sparsity: float) -> float:
        """Speedup over the dense Tensor Core for a given weight sparsity."""
        relative = self.relative_time(weight_sparsity)
        if relative <= 0:
            raise ConfigError("relative time must be positive")
        return 1.0 / relative


def a100_sparse_tensor_core() -> SingleSideSparseTensorCore:
    """The A100-style 2:4 structured-sparse Tensor Core (50% weight sparsity)."""
    return SingleSideSparseTensorCore(supported_ratios=(0.5,), decode_overhead=0.10)


def vector_wise_sparse_tensor_core() -> SingleSideSparseTensorCore:
    """The vector-wise Sparse Tensor Core of Zhu et al. [72].

    Supports vector-wise pruning ratios of 25/50/75%; the decode overhead
    is calibrated so that a 75%-pruned GEMM runs 1.86x faster than the
    dense CUTLASS baseline, matching the constant speedup the paper
    reports in Figure 21.
    """
    # 1 / (0.25 + overhead) = 1.86  =>  overhead ~= 0.2876.
    return SingleSideSparseTensorCore(
        supported_ratios=(0.25, 0.5, 0.75), decode_overhead=0.2876
    )
