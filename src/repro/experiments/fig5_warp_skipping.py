"""Figure 5 — OHMMA-step skipping inside one warp tile.

For a 32x32xK warp tile with controlled per-vector sparsity, measure how
many of the eight OHMMA instructions per 32x32x1 set execute, both with
the functional warp-level SpGEMM and with the SpWMMA macro-op expansion,
and confirm the quantised speedup levels ⟨0, 25, 50, 75⟩% (A side) and
⟨0, 50⟩% (B side).
"""

from __future__ import annotations

import numpy as np

from repro.core.spgemm_warp import WarpTileConfig, warp_spgemm, warp_speedup_levels
from repro.hw.config import GpuConfig
from repro.isa.wmma import expand_spwmma
from repro.sparsity.generators import random_sparse_matrix


def run_fig5(
    seed: int = 2021, k_steps: int = 16, config: GpuConfig | None = None
) -> list[dict]:
    """Sweep A/B vector sparsity and report OHMMA skipping per warp tile.

    Args:
        seed: RNG seed for the synthetic warp tiles.
        k_steps: reduction steps per warp tile (the figure's K).
        config: GPU configuration; accepted so the sweep runtime can drive
            every experiment uniformly.  The per-warp-tile instruction
            counts are device-independent, so it does not change the rows.
    """
    del config  # warp-tile counts do not depend on the device
    rng = np.random.default_rng(seed)
    tile = WarpTileConfig(tk=k_steps)
    levels = warp_speedup_levels(tile)
    rows = []
    for a_sparsity in (0.0, 0.25, 0.5, 0.75, 0.9):
        for b_sparsity in (0.0, 0.5, 0.9):
            a_tile = random_sparse_matrix((tile.tm, k_steps), 1.0 - a_sparsity, rng)
            b_tile = random_sparse_matrix((k_steps, tile.tn), 1.0 - b_sparsity, rng)
            _, stats = warp_spgemm(a_tile, b_tile, tile)
            expansion = expand_spwmma(a_tile != 0, b_tile != 0, tile)
            rows.append(
                {
                    "a_sparsity": a_sparsity,
                    "b_sparsity": b_sparsity,
                    "ohmma_dense": stats.ohmma_dense,
                    "ohmma_issued": stats.ohmma_issued,
                    "ohmma_skipped": stats.ohmma_skipped,
                    "sets_skipped": stats.sets_skipped,
                    "instruction_speedup": stats.instruction_speedup,
                    "spwmma_enabled": expansion.ohmma_enabled,
                    "a_skip_levels": str([round(level, 2) for level in levels["a"]]),
                    "b_skip_levels": str([round(level, 2) for level in levels["b"]]),
                }
            )
    return rows
