"""Figure 22 — layer-wise and full-model inference speedups.

CNN models (VGG-16, ResNet-18, Mask R-CNN) are compared across five
convolution methods normalised to Dense Implicit; BERT-base encoder and
the RNN are compared across three GEMM methods normalised to Dense GEMM.
"""

from __future__ import annotations

from repro.hw.config import GpuConfig
from repro.nn.inference import ModelEvaluator
from repro.nn.models import MODEL_REGISTRY, get_model

#: Paper-reported aggregate observations, for shape comparison.
PAPER_ANCHORS = {
    "cnn_dual_sparse_avg_speedup": 4.38,
    "cnn_dual_sparse_max_speedup": 7.49,
    "cnn_single_sparse_implicit_avg": 1.92,
    "nlp_dual_sparse_avg_speedup": 6.74,
    "nlp_dual_sparse_max_speedup": 8.45,
    "nlp_single_sparse_avg": 1.51,
}


def run_fig22(
    models: tuple[str, ...] | None = None,
    config: GpuConfig | None = None,
    seed: int = 2021,
) -> list[dict]:
    """Reproduce the Figure 22 per-layer and per-model speedups.

    Args:
        models: subset of model names to evaluate (defaults to all five).
        config: optional GPU configuration override.
        seed: RNG seed for the synthetic pruned weight matrices.

    Returns:
        One row per (model, layer, method) plus a ``full-model`` row per
        (model, method), each with the speedup over the model's baseline.
    """
    names = models or tuple(MODEL_REGISTRY)
    evaluator = ModelEvaluator(config, seed=seed)
    rows: list[dict] = []
    for name in names:
        model = get_model(name)
        result = evaluator.evaluate(model)
        for layer_result in result.layer_results:
            for method, estimate in layer_result.estimates.items():
                rows.append(
                    {
                        "model": name,
                        "layer": layer_result.layer,
                        "method": method,
                        "time_us": estimate.time_us,
                        "speedup_vs_baseline": layer_result.speedup(method),
                    }
                )
        for method, speedup in result.summary().items():
            rows.append(
                {
                    "model": name,
                    "layer": "full-model",
                    "method": method,
                    "time_us": result.total_time_us(method),
                    "speedup_vs_baseline": speedup,
                }
            )
    return rows
