"""Table II — the evaluated sparse DNN models and their pruning setup."""

from __future__ import annotations

from repro.nn.models import MODEL_REGISTRY


def run_table2() -> list[dict]:
    """Reproduce Table II plus the sparsity summaries used downstream."""
    rows = []
    for name in MODEL_REGISTRY:
        model = MODEL_REGISTRY[name]()
        rows.append(
            {
                "model": model.name,
                "pruning_scheme": model.pruning_scheme,
                "dataset": model.dataset,
                "accuracy": model.accuracy,
                "layers": len(model.layers),
                "mean_weight_sparsity": model.mean_weight_sparsity,
                "mean_activation_sparsity": model.mean_activation_sparsity,
            }
        )
    return rows
