"""Table II — the evaluated sparse DNN models and their pruning setup."""

from __future__ import annotations

from repro.hw.config import GpuConfig
from repro.nn.models import MODEL_REGISTRY


def run_table2(config: GpuConfig | None = None, seed: int = 2021) -> list[dict]:
    """Reproduce Table II plus the sparsity summaries used downstream.

    Args:
        config: GPU configuration; accepted so the sweep runtime can drive
            every experiment uniformly (the model zoo is device-agnostic).
        seed: accepted for signature uniformity; the table is metadata
            and uses no randomness.
    """
    del config, seed
    rows = []
    for name in MODEL_REGISTRY:
        model = MODEL_REGISTRY[name]()
        rows.append(
            {
                "model": model.name,
                "pruning_scheme": model.pruning_scheme,
                "dataset": model.dataset,
                "accuracy": model.accuracy,
                "layers": len(model.layers),
                "mean_weight_sparsity": model.mean_weight_sparsity,
                "mean_activation_sparsity": model.mean_activation_sparsity,
            }
        )
    return rows
