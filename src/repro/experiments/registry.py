"""Lightweight experiment registry: names → lazily-imported drivers.

The runner and the sweep runtime (:mod:`repro.runtime`) need to
enumerate experiments, build their keyword arguments and compute cache
keys *without* importing NumPy, the model zoo or the kernel cost models
— a fully cached invocation must stay an order of magnitude faster than
the computation it replaces, and most of that budget is import time.
Each :class:`ExperimentSpec` therefore records the driver as a dotted
``module``/``func`` pair that is only resolved (imported) when the
experiment actually executes.

Adding an experiment means adding one ``ExperimentSpec`` here; the
runner CLI, the sweep grids, the result cache and the golden-snapshot
suite all pick it up from :data:`EXPERIMENTS`.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.errors import ConfigError


@dataclass(frozen=True)
class ExperimentSpec:
    """One registered experiment (a paper table or figure driver).

    Attributes:
        name: CLI / cache name (``"table3"``, ``"fig21"``, ...).
        module: dotted module path holding the driver function.
        func: driver function name inside ``module``.
        description: one-line summary shown by ``--list``.
        defaults: full-mode keyword arguments.
        quick: overrides applied on top of ``defaults`` in quick mode.
        accepts: standard kwargs the driver understands (subset of
            ``{"config", "seed"}``); others are never forwarded.
        sweepable: extra grid-parameter names the sweep API may pass.
        device_aware: whether the rows change with the GPU preset (pure
            warp-tile or metadata experiments are device-independent and
            are flagged as such in the runner's ``--list`` output).
    """

    name: str
    module: str
    func: str
    description: str
    defaults: Mapping[str, Any] = field(default_factory=dict)
    quick: Mapping[str, Any] = field(default_factory=dict)
    accepts: frozenset = frozenset({"config", "seed"})
    sweepable: frozenset = frozenset()
    device_aware: bool = True

    def resolve(self) -> Callable[..., list[dict]]:
        """Import the driver module and return the ``run_*`` callable."""
        return getattr(importlib.import_module(self.module), self.func)

    def build_kwargs(
        self,
        quick: bool = False,
        seed: int | None = None,
        params: Mapping[str, Any] | None = None,
    ) -> dict[str, Any]:
        """Assemble the driver kwargs for one run.

        Args:
            quick: apply the quick-mode workload overrides.
            seed: RNG seed (forwarded only if the driver accepts one).
            params: extra grid parameters; must be ``sweepable`` or a
                mode default.

        Raises:
            ConfigError: a parameter is not accepted by this experiment.
        """
        kwargs: dict[str, Any] = dict(self.defaults)
        if quick:
            kwargs.update(self.quick)
        for key, value in (params or {}).items():
            if key not in self.sweepable and key not in self.defaults:
                raise ConfigError(
                    f"experiment {self.name!r} does not accept parameter "
                    f"{key!r}; sweepable: {sorted(self.sweepable)}"
                )
            kwargs[key] = value
        if seed is not None and "seed" in self.accepts:
            kwargs["seed"] = seed
        return kwargs


_SPECS = (
    ExperimentSpec(
        name="table2",
        module="repro.experiments.table2_models",
        func="run_table2",
        description="Table II — evaluated models and pruning setup",
        device_aware=False,
    ),
    ExperimentSpec(
        name="table3",
        module="repro.experiments.table3_im2col",
        func="run_table3",
        description="Table III — dense/CSR/bitmap im2col cost",
        defaults={"scale": 1.0},
        quick={"scale": 0.5},
        sweepable=frozenset({"scale"}),
    ),
    ExperimentSpec(
        name="table4",
        module="repro.experiments.table4_overhead",
        func="run_table4",
        description="Table IV — area/power overhead of the added hardware",
        accepts=frozenset({"config"}),
    ),
    ExperimentSpec(
        name="fig5",
        module="repro.experiments.fig5_warp_skipping",
        func="run_fig5",
        description="Figure 5 — quantised OHMMA skipping per warp tile",
        defaults={"k_steps": 16},
        sweepable=frozenset({"k_steps"}),
        device_aware=False,
    ),
    ExperimentSpec(
        name="fig6",
        module="repro.experiments.fig6_tiling_speedup",
        func="run_fig6",
        description="Figure 6 — speedup from imbalanced non-zero tiling",
        defaults={"size": 256},
        quick={"size": 128},
        sweepable=frozenset({"size", "average_sparsity"}),
    ),
    ExperimentSpec(
        name="fig19",
        module="repro.experiments.fig19_operand_collector",
        func="run_fig19",
        description="Figure 19 — accumulation-buffer operand collector",
        defaults={"num_instructions": 64},
        quick={"num_instructions": 16},
        sweepable=frozenset({"num_instructions", "accesses_per_instruction"}),
    ),
    ExperimentSpec(
        name="fig21",
        module="repro.experiments.fig21_spgemm",
        func="run_fig21",
        description="Figure 21 — SpGEMM time vs operand sparsity",
        defaults={"size": 4096, "numeric_size": 2048},
        quick={"size": 1024, "numeric_size": 256},
        accepts=frozenset({"config", "seed"}),
        sweepable=frozenset({"size", "numeric_size"}),
    ),
    ExperimentSpec(
        name="fig22",
        module="repro.experiments.fig22_models",
        func="run_fig22",
        description="Figure 22 — layer-wise and full-model speedups",
        quick={"models": ["ResNet-18", "BERT-base Encoder"]},
        sweepable=frozenset({"models"}),
    ),
    ExperimentSpec(
        name="functional",
        module="repro.experiments.functional_models",
        func="run_functional_models",
        description="Full-scale functional whole-model runs (blocked engine)",
        defaults={"scale": 1.0},
        quick={"scale": 0.0625},
        sweepable=frozenset({"models", "scale", "backend", "pruning"}),
    ),
    ExperimentSpec(
        name="serve",
        module="repro.experiments.serve",
        func="run_serve",
        description="Compiled-session serving throughput across batch sizes",
        defaults={"scale": 1.0},
        quick={"scale": 0.0625, "batch_sizes": [1, 3]},
        sweepable=frozenset(
            {"models", "batch_sizes", "scale", "backend", "pruning"}
        ),
    ),
    ExperimentSpec(
        name="serve_daemon",
        module="repro.experiments.serve_daemon",
        func="run_serve_daemon",
        description="Serving daemon under Poisson load: batching + latency SLOs",
        quick={
            "scale": 0.0625,
            "requests": 6,
            "image_pool": 4,
            "batch_caps": [3],
            "deadlines_us": [800.0],
        },
        sweepable=frozenset(
            {
                "models",
                "batch_caps",
                "deadlines_us",
                "workers_counts",
                "queue_depth",
                "requests",
                "mean_gap_us",
                "image_pool",
                "scale",
                "backend",
                "pruning",
            }
        ),
    ),
    ExperimentSpec(
        name="spconv",
        module="repro.experiments.spconv_pipeline",
        func="run_spconv",
        description="Full-resolution dual-side conv through the im2col engines",
        quick={"sparsities": [0.75, 0.99]},
        sweepable=frozenset({"sparsities", "weight_sparsity", "backend"}),
    ),
)

#: Registered experiments in canonical (report) order.
EXPERIMENTS: dict[str, ExperimentSpec] = {spec.name: spec for spec in _SPECS}


def get_experiment(name: str) -> ExperimentSpec:
    """Look up an experiment by name.

    Raises:
        ConfigError: the name is not registered.
    """
    try:
        return EXPERIMENTS[name]
    except KeyError:
        raise ConfigError(
            f"unknown experiment {name!r}; available: {', '.join(EXPERIMENTS)}"
        ) from None
