"""Figure 6 — speedup beyond the quantised levels via warp tiling.

A global matrix row whose average sparsity (37.5%) sits between the
exploitable per-warp levels still gains speedup because non-zeros are not
evenly distributed: some warp tiles end up sparse enough to skip OHMMA
groups (the paper's example reaches ~1.3x).  The experiment reproduces
that effect by comparing a perfectly even distribution against an uneven
one at identical average sparsity.
"""

from __future__ import annotations

import numpy as np

from repro.core.spgemm_device import count_device_instructions
from repro.hw.config import GpuConfig, V100_CONFIG
from repro.sparsity.distributions import uniform_mask


def _matrix_from_mask(mask: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    values = rng.uniform(0.5, 1.5, size=mask.shape)
    return np.where(mask, values, 0.0)


def _figure6_banded_mask(
    size: int, average_sparsity: float, rng: np.random.Generator
) -> np.ndarray:
    """Alternating 32-row bands: fully dense and 2x-average-sparsity bands.

    The construction mirrors the paper's example: half of the warps see a
    dense operand (no speedup) while the other half see twice the average
    sparsity and can skip OHMMA groups, so the global matrix gains even
    though its average sparsity sits between the quantised levels.
    """
    mask = np.ones((size, size), dtype=bool)
    sparse_band_density = 1.0 - 2.0 * average_sparsity
    for band_start in range(0, size, 64):
        band = slice(band_start + 32, min(band_start + 64, size))
        mask[band] = rng.random((mask[band].shape)) < sparse_band_density
    return mask


def run_fig6(
    size: int = 256,
    average_sparsity: float = 0.375,
    seed: int = 2021,
    config: GpuConfig | None = None,
) -> list[dict]:
    """Compare even vs uneven non-zero distributions at equal sparsity.

    Args:
        size: square matrix dimension.
        average_sparsity: global A-operand sparsity of both distributions.
        seed: RNG seed for the synthetic masks.
        config: GPU configuration used to convert the issue-limited OHMMA
            cycle count to a device execution time.
    """
    config = config or V100_CONFIG
    rng = np.random.default_rng(seed)
    density = 1.0 - average_sparsity
    b_dense = rng.uniform(0.5, 1.5, size=(size, size))

    rows = []
    for label, mask in (
        ("uniform", uniform_mask((size, size), density, rng)),
        ("imbalanced (Figure 6)", _figure6_banded_mask(size, average_sparsity, rng)),
    ):
        matrix_a = _matrix_from_mask(mask, rng)
        counts = count_device_instructions(matrix_a, b_dense)
        issue_cycles = counts.ohmma_issued / config.ohmma_slots_per_cycle
        rows.append(
            {
                "distribution": label,
                "a_sparsity": 1.0 - np.count_nonzero(matrix_a) / matrix_a.size,
                "ohmma_issued": counts.ohmma_issued,
                "ohmma_dense": counts.ohmma_dense,
                "instruction_speedup": counts.instruction_speedup,
                "issue_time_us": config.cycles_to_us(issue_cycles),
            }
        )
    return rows
