"""Full-resolution functional dual-side convolution sweep (``spconv``).

The counterpart of Table III that *executes* instead of estimating: the
paper's Table III ResNet-18 layer (feature map 56x56, 3x3 kernel, 128
channels) and the VGG-16 conv3-1 layer (56x56, 128 -> 256 channels) are
run through the functional dual-side pipeline — word-level bitmap im2col
chained into the outer-product SpGEMM engine — at their real spatial
resolution (no ``scale`` shrinking), swept over the Table III feature-map
sparsity grid.

Each row reports the exact pipeline statistics (im2col register
operations and condensed-value traffic, issued vs dense OHMMA counts,
warp-tile skips), the calibrated im2col cost relative to a dense
lowering (via :meth:`repro.kernels.im2col_cost.Im2colCostModel.cost`),
the issue-limited device time on the selected GPU, and a numeric
verification bit against the dense im2col + GEMM result.

Such runs were impractical before the vectorized im2col engines: the
per-row Python loops took ~10 s per layer evaluation at this size, which
is why ``run_table3`` ships a ``scale`` escape hatch.  This driver has
none.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.im2col_dense import Im2colStats, conv2d_via_im2col
from repro.core.spconv import sparse_conv2d
from repro.hw.config import GpuConfig, V100_CONFIG
from repro.kernels.im2col_cost import Im2colCostModel
from repro.kernels.layer_spec import ConvLayerSpec
from repro.sparsity.generators import random_sparse_matrix

#: Feature-map sparsity grid of Table III.
SPARSITY_POINTS = (0.0, 0.25, 0.5, 0.75, 0.99, 0.999)

#: Weight sparsity applied to every layer (AGP-style conv pruning level).
DEFAULT_WEIGHT_SPARSITY = 0.75


def spconv_layers() -> tuple[ConvLayerSpec, ...]:
    """The full-resolution layers the ``spconv`` experiment executes."""
    return (
        ConvLayerSpec(
            name="resnet18-conv (H/W=56, K=3, C=128)",
            in_channels=128,
            out_channels=128,
            height=56,
            width=56,
            kernel=3,
            stride=1,
            padding=1,
        ),
        ConvLayerSpec(
            name="vgg16-conv3-1 (H/W=56, K=3, C=128->256)",
            in_channels=128,
            out_channels=256,
            height=56,
            width=56,
            kernel=3,
            stride=1,
            padding=1,
        ),
    )


def run_spconv(
    seed: int = 2021,
    sparsities: Sequence[float] = SPARSITY_POINTS,
    weight_sparsity: float = DEFAULT_WEIGHT_SPARSITY,
    backend: str = "vectorized",
    config: GpuConfig | None = None,
) -> list[dict]:
    """Execute the full-resolution dual-side convolutions and tabulate.

    Args:
        seed: RNG seed for the synthetic feature maps and pruned weights.
        sparsities: feature-map sparsity grid (zero fraction of the
            activations).
        weight_sparsity: zero fraction of the pruned weights.
        backend: pipeline backend — ``"vectorized"`` (default) or
            ``"reference"`` (the oracle loops; orders of magnitude
            slower at this size).
        config: GPU configuration for the im2col cost calibration and
            the issue-limited device time.

    Returns:
        One row per (layer, sparsity point) with exact pipeline
        statistics and the numeric-verification bit.
    """
    config = config or V100_CONFIG
    cost_model = Im2colCostModel(config)
    rng = np.random.default_rng(seed)
    rows: list[dict] = []
    for spec in spconv_layers():
        weights = random_sparse_matrix(
            (spec.out_channels, spec.in_channels * spec.kernel * spec.kernel),
            1.0 - weight_sparsity,
            rng,
        ).reshape(spec.out_channels, spec.in_channels, spec.kernel, spec.kernel)
        for sparsity in sparsities:
            feature_map = random_sparse_matrix(
                (spec.in_channels * spec.height, spec.width), 1.0 - sparsity, rng
            ).reshape(spec.in_channels, spec.height, spec.width)
            result = sparse_conv2d(
                feature_map,
                weights,
                stride=spec.stride,
                padding=spec.padding,
                backend=backend,
            )
            stats = result.stats
            lowered_rows, lowered_cols = stats.lowered_shape
            dense_stats = Im2colStats(
                element_reads=lowered_rows * lowered_cols,
                element_writes=lowered_rows * lowered_cols,
                lowered_shape=stats.lowered_shape,
            )
            expected = conv2d_via_im2col(
                feature_map, weights, spec.stride, spec.padding
            )
            issue_cycles = (
                stats.gemm.warp.ohmma_issued / config.ohmma_slots_per_cycle
            )
            rows.append(
                {
                    "layer": spec.name,
                    "sparsity_percent": sparsity * 100.0,
                    "activation_sparsity": round(stats.activation_sparsity, 4),
                    "weight_sparsity": round(stats.weight_sparsity, 4),
                    "lowered_mkn": "x".join(
                        str(dim)
                        for dim in (lowered_rows, lowered_cols, spec.out_channels)
                    ),
                    "im2col_register_ops": stats.im2col.register_ops,
                    "im2col_value_reads": stats.im2col.value_reads,
                    "im2col_vs_dense_cost": round(
                        cost_model.cost(stats.im2col)
                        / cost_model.cost(dense_stats),
                        4,
                    ),
                    "ohmma_issued": stats.gemm.warp.ohmma_issued,
                    "ohmma_dense": stats.gemm.warp.ohmma_dense,
                    "instruction_speedup": round(stats.gemm.instruction_speedup, 3),
                    "tile_skip_fraction": round(stats.gemm.tile_skip_fraction, 4),
                    "issue_time_us": round(config.cycles_to_us(issue_cycles), 4),
                    "matches_dense": bool(
                        np.allclose(result.output, expected, atol=1e-6)
                    ),
                }
            )
    return rows
