"""Command-line entry point: regenerate every table and figure.

Usage::

    python -m repro.experiments.runner                # everything (slow-ish)
    python -m repro.experiments.runner table3 fig21
    python -m repro.experiments.runner --list         # show what exists
    python -m repro.experiments.runner --quick --jobs 4
    python -m repro.experiments.runner --gpu a100 --gpu t4 fig21

Results are cached (content-addressed on experiment + parameters + code
version, see :mod:`repro.runtime.cache`), so a repeated invocation
prints byte-identical tables near-instantly; pass ``--no-cache`` to
force recomputation.  ``--jobs N`` runs cache misses in ``N`` worker
processes without changing the output order.  The Figure 21 sweep
defaults to the paper's 4096-sized GEMM; pass ``--quick`` to shrink the
workloads for a fast smoke run.  Progress/cache diagnostics go to
stderr; stdout carries only the tables.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments.registry import EXPERIMENTS
from repro.experiments.report import format_rows
from repro.runtime.cache import ResultCache
from repro.runtime.executor import ExperimentTask, run_tasks


def _list_experiments() -> str:
    width = max(len(name) for name in EXPERIMENTS)
    lines = ["available experiments:"]
    for name, spec in EXPERIMENTS.items():
        note = "" if spec.device_aware else "  [device-independent]"
        lines.append(f"  {name.ljust(width)}  {spec.description}{note}")
    return "\n".join(lines)


def main(argv: "list[str] | None" = None) -> int:
    """Run the selected experiments and print their tables."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiments to run (default: all; see --list)",
    )
    parser.add_argument(
        "--quick", action="store_true", help="shrink workloads for a fast smoke run"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for uncached experiments (default: 1)",
    )
    parser.add_argument(
        "--cache",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="reuse cached results when code and parameters are unchanged",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="PATH",
        help="cache root (default: $REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    parser.add_argument(
        "--gpu",
        action="append",
        default=None,
        metavar="PRESET",
        help="GPU preset (repeatable): v100, a100, t4, jetson-xavier",
    )
    parser.add_argument(
        "--seed", type=int, default=None, help="override the experiments' RNG seed"
    )
    parser.add_argument(
        "--list", action="store_true", help="list registered experiments and exit"
    )
    args = parser.parse_args(argv)

    if args.list:
        print(_list_experiments())
        return 0
    if args.jobs < 1:
        print(f"error: --jobs must be >= 1, got {args.jobs}", file=sys.stderr)
        return 2

    names = args.experiments or list(EXPERIMENTS)
    unknown = [name for name in names if name not in EXPERIMENTS]
    if unknown:
        print(
            f"error: unknown experiment(s): {', '.join(unknown)}\n"
            f"{_list_experiments()}",
            file=sys.stderr,
        )
        return 2

    gpus: "list[str | None]" = args.gpu if args.gpu else [None]
    tasks = [
        ExperimentTask(experiment=name, quick=args.quick, gpu=gpu, seed=args.seed)
        for name in names
        for gpu in gpus
    ]
    cache = ResultCache(args.cache_dir) if args.cache else None
    started = time.perf_counter()
    try:
        results = run_tasks(tasks, jobs=args.jobs, cache=cache)
    except Exception as error:  # unknown preset, bad parameter, ...
        print(f"error: {error}", file=sys.stderr)
        return 2
    elapsed = time.perf_counter() - started

    for result in results:
        task = result.task
        title = (
            f"=== {task.experiment} ==="
            if task.gpu is None
            else f"=== {task.experiment} @ {task.gpu} ==="
        )
        print(format_rows(result.rows, title=title))
        print()

    hits = sum(1 for result in results if result.cached)
    print(
        f"[runner] {len(results)} task(s), {hits} cache hit(s), "
        f"jobs={args.jobs}, {elapsed:.2f}s",
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
