"""Command-line entry point: regenerate every table and figure.

Usage::

    python -m repro.experiments.runner             # everything (slow-ish)
    python -m repro.experiments.runner table3 fig21

The Figure 21 sweep defaults to the paper's 4096-sized GEMM; pass
``--quick`` to shrink the workloads for a fast smoke run.
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.fig5_warp_skipping import run_fig5
from repro.experiments.functional_models import run_functional_models
from repro.experiments.fig6_tiling_speedup import run_fig6
from repro.experiments.fig19_operand_collector import run_fig19
from repro.experiments.fig21_spgemm import run_fig21
from repro.experiments.fig22_models import run_fig22
from repro.experiments.report import format_rows
from repro.experiments.table2_models import run_table2
from repro.experiments.table3_im2col import run_table3
from repro.experiments.table4_overhead import run_table4


def _build_registry(quick: bool):
    """Map experiment names to zero-argument callables."""
    return {
        "table2": lambda: run_table2(),
        "table3": lambda: run_table3(scale=0.5 if quick else 1.0),
        "table4": lambda: run_table4(),
        "fig5": lambda: run_fig5(),
        "fig6": lambda: run_fig6(size=128 if quick else 256),
        "fig19": lambda: run_fig19(num_instructions=16 if quick else 64),
        "fig21": lambda: run_fig21(size=1024 if quick else 4096),
        "fig22": lambda: run_fig22(
            models=("ResNet-18", "BERT-base Encoder") if quick else None
        ),
        "functional": lambda: run_functional_models(
            scale=0.0625 if quick else 0.125
        ),
    }


def main(argv: list[str] | None = None) -> int:
    """Run the selected experiments and print their tables."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiments to run (default: all)",
    )
    parser.add_argument(
        "--quick", action="store_true", help="shrink workloads for a fast smoke run"
    )
    args = parser.parse_args(argv)

    registry = _build_registry(args.quick)
    names = args.experiments or list(registry)
    unknown = [name for name in names if name not in registry]
    if unknown:
        parser.error(f"unknown experiments: {unknown}; available: {sorted(registry)}")
    for name in names:
        rows = registry[name]()
        print(format_rows(rows, title=f"=== {name} ==="))
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
