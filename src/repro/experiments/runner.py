"""Command-line entry point: regenerate every table and figure.

Usage::

    python -m repro.experiments.runner                # everything (slow-ish)
    python -m repro.experiments.runner table3 fig21
    python -m repro.experiments.runner --list         # show what exists
    python -m repro.experiments.runner --quick --jobs 4
    python -m repro.experiments.runner --gpu a100 --gpu t4 fig21
    python -m repro.experiments.runner --dry-run fig21 table3
    python -m repro.experiments.runner --resume fig21 table3

Results are cached (content-addressed on experiment + parameters + code
version, see :mod:`repro.runtime.cache`), so a repeated invocation
prints byte-identical tables near-instantly; pass ``--no-cache`` to
force recomputation.  ``--jobs N`` runs cache misses in ``N`` worker
processes without changing the output order.

Execution is plan-first and crash-safe: the invocation expands into a
content-addressed :class:`repro.runtime.plan.RunPlan` (``--dry-run``
prints it and exits), every state transition is journaled to an
append-only fsync'd JSONL file under the cache root, and a run killed at
any point can be relaunched with ``--resume`` — finished tasks are
served from the result cache and the rest re-dispatch, producing a
byte-identical report to an uninterrupted run.  Failing tasks are
retried under a bounded deterministic-backoff policy (``--max-retries``,
``--task-timeout``); a permanently failing cell is quarantined with a
per-task failure summary and a non-zero exit instead of a bare
traceback, and ``--keep-going`` completes the rest of the grid around
it.  Progress/ETA and cache diagnostics go to stderr; stdout carries
only the tables.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.errors import ConfigError
from repro.experiments.registry import EXPERIMENTS
from repro.experiments.report import format_rows
from repro.runtime.cache import ResultCache
from repro.runtime.executor import ExperimentTask, TaskResult, run_plan
from repro.runtime.journal import RunJournal, read_events, replay
from repro.runtime.plan import build_plan, format_plan
from repro.runtime.retry import RetryPolicy


def _list_experiments() -> str:
    width = max(len(name) for name in EXPERIMENTS)
    lines = ["available experiments:"]
    for name, spec in EXPERIMENTS.items():
        note = "" if spec.device_aware else "  [device-independent]"
        lines.append(f"  {name.ljust(width)}  {spec.description}{note}")
    return "\n".join(lines)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiments to run (default: all; see --list)",
    )
    parser.add_argument(
        "--quick", action="store_true", help="shrink workloads for a fast smoke run"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for uncached experiments (default: 1)",
    )
    parser.add_argument(
        "--cache",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="reuse cached results when code and parameters are unchanged",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="PATH",
        help="cache root (default: $REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    parser.add_argument(
        "--gpu",
        action="append",
        default=None,
        metavar="PRESET",
        help="GPU preset (repeatable): v100, a100, t4, jetson-xavier",
    )
    parser.add_argument(
        "--seed", type=int, default=None, help="override the experiments' RNG seed"
    )
    parser.add_argument(
        "--list", action="store_true", help="list registered experiments and exit"
    )
    parser.add_argument(
        "--dry-run",
        action="store_true",
        help="print the expanded run plan (tasks, cache keys, statuses) and exit",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="continue an interrupted run: replay its journal against the "
        "result cache, skip finished tasks, re-dispatch the rest",
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=2,
        metavar="N",
        help="retries per task after a transient failure (killed worker, "
        "timeout; default: 2)",
    )
    parser.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-task wall-clock timeout enforced by the parent process "
        "(default: unbounded)",
    )
    parser.add_argument(
        "--keep-going",
        action="store_true",
        help="quarantine permanently failing tasks and finish the rest of "
        "the grid instead of stopping at the first failure",
    )
    parser.add_argument(
        "--journal",
        default=None,
        metavar="PATH",
        help="run-journal file (default: <cache-root>/runs/<plan-id>.jsonl "
        "when caching is enabled)",
    )
    return parser


def _eta_text(durations: "list[float]", pending_left: int) -> str:
    """Remaining-work estimate from the mean executed-task duration."""
    if not durations or pending_left <= 0:
        return ""
    eta = sum(durations) / len(durations) * pending_left
    return f", eta {eta:.0f}s"


def main(argv: "list[str] | None" = None) -> int:
    """Run the selected experiments and print their tables."""
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list:
        print(_list_experiments())
        return 0
    if args.jobs < 1:
        print(f"error: --jobs must be >= 1, got {args.jobs}", file=sys.stderr)
        return 2
    if args.max_retries < 0:
        print(
            f"error: --max-retries must be >= 0, got {args.max_retries}",
            file=sys.stderr,
        )
        return 2
    if args.task_timeout is not None and args.task_timeout <= 0:
        print(
            f"error: --task-timeout must be > 0, got {args.task_timeout}",
            file=sys.stderr,
        )
        return 2
    if args.resume and not args.cache and args.journal is None:
        print(
            "error: --resume needs the result cache (drop --no-cache) or an "
            "explicit --journal",
            file=sys.stderr,
        )
        return 2

    names = args.experiments or list(EXPERIMENTS)
    unknown = [name for name in names if name not in EXPERIMENTS]
    if unknown:
        print(
            f"error: unknown experiment(s): {', '.join(unknown)}\n"
            f"{_list_experiments()}",
            file=sys.stderr,
        )
        return 2

    gpus: "list[str | None]" = args.gpu if args.gpu else [None]
    tasks = [
        ExperimentTask(experiment=name, quick=args.quick, gpu=gpu, seed=args.seed)
        for name in names
        for gpu in gpus
    ]
    cache = ResultCache(args.cache_dir) if args.cache else None
    try:
        plan = build_plan(tasks, cache)
    except ConfigError as error:  # unknown preset, bad parameter, ...
        print(f"error: {error}", file=sys.stderr)
        return 2

    if args.dry_run:
        print(format_plan(plan))
        print(
            f"[runner] dry run: {len(plan.entries)} task(s), "
            f"{len(plan.cached())} already cached, nothing executed",
            file=sys.stderr,
        )
        return 0

    journal_path = args.journal
    if journal_path is None and cache is not None:
        journal_path = cache.root / "runs" / f"{plan.short_id}.jsonl"
    journal = None
    if journal_path is not None:
        if args.resume:
            prior = replay(read_events(journal_path))
            finished = sum(
                1 for state in prior.values() if state["status"] == "completed"
            )
            print(
                f"[runner] resuming plan {plan.short_id}: journal has "
                f"{len(prior)} task(s), {finished} finished",
                file=sys.stderr,
            )
        journal = RunJournal(journal_path, resume=args.resume)

    policy = RetryPolicy(
        max_retries=args.max_retries, task_timeout_s=args.task_timeout
    )
    total = len(plan.entries)
    durations: "list[float]" = []

    def progress(done: int, _total: int, result: TaskResult) -> None:
        task = result.task
        where = f"{task.experiment}" + (f" @ {task.gpu}" if task.gpu else "")
        if result.cached:
            outcome = "cached"
        elif result.ok:
            durations.append(result.duration_s)
            outcome = f"ok {result.duration_s:.2f}s"
            if result.attempts > 1:
                outcome += f" (attempt {result.attempts})"
        else:
            outcome = f"FAILED after {result.attempts} attempt(s)"
        pending_left = total - done
        print(
            f"[runner] {done}/{total} {where} {outcome}"
            f"{_eta_text(durations, pending_left)}",
            file=sys.stderr,
        )

    started = time.perf_counter()
    try:
        execution = run_plan(
            plan,
            jobs=args.jobs,
            cache=cache,
            journal=journal,
            policy=policy,
            keep_going=args.keep_going,
            progress=progress,
            resumed=args.resume,
        )
    except ConfigError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    finally:
        if journal is not None:
            journal.close()
    elapsed = time.perf_counter() - started

    for result in execution.results:
        if not result.ok:
            continue
        task = result.task
        title = (
            f"=== {task.experiment} ==="
            if task.gpu is None
            else f"=== {task.experiment} @ {task.gpu} ==="
        )
        print(format_rows(result.rows, title=title))
        print()

    failures = execution.failures
    for failure in failures:
        task = failure.task
        where = f"{task.experiment}" + (f" @ {task.gpu}" if task.gpu else "")
        retries = max(failure.attempts - 1, 0)
        print(
            f"[runner] FAILED {where} params={dict(task.params)!r}: "
            f"{failure.error} ({retries} retry(ies) used)",
            file=sys.stderr,
        )
    if execution.aborted and len(execution.results) < total:
        print(
            f"[runner] stopped after first failure; "
            f"{total - len(execution.results)} task(s) not dispatched "
            f"(use --keep-going to finish the grid, --resume to continue)",
            file=sys.stderr,
        )

    hits = execution.cache_hits
    print(
        f"[runner] {len(execution.results)} task(s), {hits} cache hit(s), "
        f"{len(failures)} failed, jobs={args.jobs}, {elapsed:.2f}s",
        file=sys.stderr,
    )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
