"""Table III — normalised im2col time of dense / CSR / bitmap variants.

Workload: the ResNet-18 layer the paper uses (feature map 56x56, 3x3
kernel, 128 input and output channels), swept over feature-map sparsity
{0, 25, 50, 75, 99, 99.9}%.
"""

from __future__ import annotations

import numpy as np

from repro.hw.config import GpuConfig
from repro.kernels.im2col_cost import Im2colCostModel, compare_im2col_methods
from repro.kernels.layer_spec import ConvLayerSpec

#: The sparsity points of Table III.
SPARSITY_POINTS = (0.0, 0.25, 0.5, 0.75, 0.99, 0.999)

#: Paper-reported normalised times, used for shape comparison in
#: EXPERIMENTS.md and the regression tests.
PAPER_CSR = {0.0: 101.3, 0.25: 67.1, 0.5: 45.2, 0.75: 14.5, 0.99: 4.7, 0.999: 1.2}
PAPER_BITMAP = {0.0: 8.31, 0.25: 6.87, 0.5: 4.73, 0.75: 2.5, 0.99: 1.5, 0.999: 1.1}


def table3_layer() -> ConvLayerSpec:
    """The convolution layer of Table III."""
    return ConvLayerSpec(
        name="resnet18-conv (H/W=56, K=3, C=128)",
        in_channels=128,
        out_channels=128,
        height=56,
        width=56,
        kernel=3,
        stride=1,
        padding=1,
    )


def run_table3(
    seed: int = 2021, scale: float = 1.0, config: GpuConfig | None = None
) -> list[dict]:
    """Reproduce Table III.

    Args:
        seed: RNG seed for the synthetic feature-map masks.
        scale: spatial scale factor (<1 shrinks the layer for quick runs;
            the normalised results are size-invariant to first order).
        config: GPU configuration forwarded to the im2col cost model.
    """
    rng = np.random.default_rng(seed)
    base = table3_layer()
    spec = ConvLayerSpec(
        name=base.name,
        in_channels=base.in_channels,
        out_channels=base.out_channels,
        height=max(8, int(base.height * scale)),
        width=max(8, int(base.width * scale)),
        kernel=base.kernel,
        stride=base.stride,
        padding=base.padding,
    )
    cost_model = Im2colCostModel(config)
    rows = []
    for sparsity in SPARSITY_POINTS:
        comparison = compare_im2col_methods(spec, sparsity, rng, cost_model)
        rows.append(
            {
                "sparsity_percent": sparsity * 100.0,
                "dense_im2col": comparison.dense_normalized,
                "csr_im2col": comparison.csr_normalized,
                "bitmap_im2col": comparison.bitmap_normalized,
                "paper_csr": PAPER_CSR[sparsity],
                "paper_bitmap": PAPER_BITMAP[sparsity],
            }
        )
    return rows
