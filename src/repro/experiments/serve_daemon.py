"""Serving-daemon sweep: dynamic batching under a Poisson request load.

Complements the ``serve`` experiment: instead of handing the session
runtime pre-formed batches, each cell stands up a full
:class:`~repro.serving.daemon.ServingDaemon` — request queue, deadline
flushing, admission control, worker sharding — and drives it with a
seeded Poisson arrival schedule on the virtual clock.  Rows report what
a serving operator watches: completion/rejection counts, realised batch
sizes and flush causes, exact p50/p95/p99 request latencies and the
modelled throughput over the makespan.

Every quantity is a deterministic function of (model, batch cap,
deadline, workers, queue depth, schedule seed, GPU preset) — the daemon
never reads wall time — so the rows are golden-snapshotted and cached
like every other experiment.  Wall-clock daemon throughput is gated
separately in ``benchmarks/test_serve_throughput.py``.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.spgemm_warp import WarpTileConfig
from repro.hw.config import GpuConfig, V100_CONFIG
from repro.nn.models import DEFAULT_MODELS
from repro.serving.arrivals import poisson_arrivals
from repro.serving.daemon import ServingDaemon
from repro.serving.pool import SessionPool
from repro.serving.queue import FLUSH_DEADLINE, FLUSH_FULL

#: Default sweep axes: one realistic operating point per axis; the
#: registry marks every axis sweepable for wider grids.
DEFAULT_BATCH_CAPS = (4,)
DEFAULT_DEADLINES_US = (1_000.0,)
DEFAULT_WORKER_COUNTS = (2,)


def run_serve_daemon(
    models: "Sequence[str] | None" = None,
    batch_caps: "Sequence[int] | None" = None,
    deadlines_us: "Sequence[float] | None" = None,
    workers_counts: "Sequence[int] | None" = None,
    queue_depth: int = 32,
    requests: int = 12,
    mean_gap_us: float = 400.0,
    image_pool: int = 8,
    scale: "float | None" = None,
    seed: int = 2021,
    config: "GpuConfig | None" = None,
    tile_config: "WarpTileConfig | None" = None,
    backend: str = "auto",
    pruning: "str | None" = None,
) -> list[dict]:
    """Serve seeded request schedules through daemon configurations.

    Args:
        models: model names to serve (defaults to the whole zoo).
        batch_caps: dynamic-batching size caps to sweep.
        deadlines_us: flush deadlines (microseconds) to sweep.
        workers_counts: logical worker counts to sweep.
        queue_depth: per-model admission bound on pending requests.
        requests: schedule length per cell.
        mean_gap_us: mean Poisson inter-arrival gap (microseconds).
        image_pool: images are drawn from ``0..image_pool-1``.
        scale: uniform data scale, or ``None`` for each model's
            ``benchmark_scale`` metadata.
        seed: seed of both the synthetic operands and the arrival
            schedule.
        config: GPU preset for the modelled service time.
        tile_config: warp-tile geometry override.
        backend: SpGEMM backend, resolved per per-image GEMM shape.
        pruning: named pruning method applied to every model's weights
            (``None`` — reported as ``native``).

    Returns:
        One row per (model, batch cap, deadline, workers) cell.
    """
    config = config or V100_CONFIG
    names = tuple(models or DEFAULT_MODELS)
    caps = [int(cap) for cap in (batch_caps or DEFAULT_BATCH_CAPS)]
    deadlines = [float(d) for d in (deadlines_us or DEFAULT_DEADLINES_US)]
    worker_axis = [int(w) for w in (workers_counts or DEFAULT_WORKER_COUNTS)]
    pool = SessionPool(
        scale=scale,
        seed=seed,
        backend=backend,
        pruning=pruning,
        tile_config=tile_config,
    )
    rows: list[dict] = []
    for name in names:
        schedule = poisson_arrivals(
            [name], count=requests, mean_gap_us=mean_gap_us, seed=seed,
            image_pool=image_pool,
        )
        for cap in caps:
            for deadline in deadlines:
                for workers in worker_axis:
                    daemon = ServingDaemon(
                        pool,
                        batch_cap=cap,
                        deadline_us=deadline,
                        queue_depth=max(queue_depth, cap),
                        workers=workers,
                        config=config,
                    )
                    report = daemon.run(schedule)
                    completed = report.completed
                    sizes = [len(b.images) for b in report.batches if b.completed]
                    row = {
                        "model": name,
                        "pruning": pruning or "native",
                        "scale": pool.scale_for(name),
                        "batch_cap": cap,
                        "deadline_us": deadline,
                        "workers": workers,
                        "queue_depth": max(queue_depth, cap),
                        "requests": requests,
                        "mean_gap_us": mean_gap_us,
                        "completed": len(completed),
                        "rejected": len(report.rejected),
                        "failed": len(report.failed),
                        "batches": len(sizes),
                        "mean_batch_size": round(
                            sum(sizes) / len(sizes), 3
                        ) if sizes else 0.0,
                        "flush_full": sum(
                            1 for b in report.batches
                            if b.completed and b.flush_cause == FLUSH_FULL
                        ),
                        "flush_deadline": sum(
                            1 for b in report.batches
                            if b.completed and b.flush_cause == FLUSH_DEADLINE
                        ),
                        "makespan_us": round(report.makespan_us, 3),
                        "images_per_sec": round(report.images_per_sec(), 1),
                    }
                    row.update(report.latency.summary())
                    rows.append(row)
    return rows
