"""Figure 21 — SpGEMM execution time versus operand sparsity.

Workload: a 4096x4096x4096 GEMM.  Matrix A's sparsity sweeps 0-99.9%;
matrix B's sparsity takes one of several fixed values.  Compared methods:
CUTLASS (dense), cuSparse (B fixed at 99%, A >= 90% only, as in the
paper), the vector-wise Sparse Tensor Core [72] and our dual-side sparse
Tensor Core.
"""

from __future__ import annotations

from repro.hw.config import GpuConfig
from repro.kernels.gemm_cusparse import CusparseGemm
from repro.kernels.gemm_dense import CutlassGemm
from repro.kernels.gemm_dual_sparse import DualSparseGemm
from repro.kernels.gemm_sparse_tc import SparseTensorCoreGemm

#: Matrix A sparsity sweep (fraction of zeros).
A_SPARSITY_POINTS = (0.0, 0.2, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.99, 0.999)
#: Matrix B sparsity curves of the figure.
B_SPARSITY_POINTS = (0.0, 0.2, 0.4, 0.6, 0.8, 0.9, 0.99, 0.999)
#: cuSparse is only reported for A sparsity >= 90% with B at 99%.
CUSPARSE_A_POINTS = (0.9, 0.95, 0.99, 0.999)

#: Paper anchor observations used for shape comparison.
PAPER_ANCHORS = {
    "sparse_tc_speedup": 1.86,
    "ours_a0_b99_speedup": 13.4,
    "ours_a999_b99_speedup": 23.0,
    "ours_break_even_a_sparsity_b_dense": 0.25,
    "cusparse_a999_speedup": 1.67,
}


def run_fig21(
    size: int = 4096, config: GpuConfig | None = None
) -> list[dict]:
    """Reproduce the Figure 21 sweep.

    Args:
        size: GEMM dimension (M = N = K); 4096 matches the paper, smaller
            values give quicker runs with the same qualitative shape.
        config: optional GPU configuration override.

    Returns:
        One row per (method, A sparsity, B sparsity) with the modelled
        execution time and the speedup over the dense CUTLASS baseline.
    """
    cutlass = CutlassGemm(config)
    cusparse = CusparseGemm(config)
    sparse_tc = SparseTensorCoreGemm(config)
    ours = DualSparseGemm(config)

    baseline = cutlass.estimate_from_shape(size, size, size)
    rows = [
        {
            "method": baseline.method,
            "a_sparsity": 0.0,
            "b_sparsity": 0.0,
            "time_us": baseline.time_us,
            "speedup_vs_cutlass": 1.0,
        }
    ]

    # Sparse Tensor Core: a single flat line (75% vector-wise pruning).
    stc = sparse_tc.estimate_from_sparsity(size, size, size, weight_sparsity=0.75)
    rows.append(
        {
            "method": stc.method,
            "a_sparsity": 0.0,
            "b_sparsity": 0.75,
            "time_us": stc.time_us,
            "speedup_vs_cutlass": baseline.time_us / stc.time_us,
        }
    )

    for a_sparsity in CUSPARSE_A_POINTS:
        estimate = cusparse.estimate_from_sparsity(
            size, size, size, a_sparsity, b_sparsity=0.99
        )
        rows.append(
            {
                "method": estimate.method,
                "a_sparsity": a_sparsity,
                "b_sparsity": 0.99,
                "time_us": estimate.time_us,
                "speedup_vs_cutlass": baseline.time_us / estimate.time_us,
            }
        )

    for b_sparsity in B_SPARSITY_POINTS:
        for a_sparsity in A_SPARSITY_POINTS:
            estimate = ours.estimate_from_sparsity(
                size, size, size, a_sparsity, b_sparsity
            )
            rows.append(
                {
                    "method": estimate.method,
                    "a_sparsity": a_sparsity,
                    "b_sparsity": b_sparsity,
                    "time_us": estimate.time_us,
                    "speedup_vs_cutlass": baseline.time_us / estimate.time_us,
                }
            )
    return rows
