"""Figure 21 — SpGEMM execution time versus operand sparsity.

Workload: a 4096x4096x4096 GEMM.  Matrix A's sparsity sweeps 0-99.9%;
matrix B's sparsity takes one of several fixed values.  Compared methods:
CUTLASS (dense), cuSparse (B fixed at 99%, A >= 90% only, as in the
paper), the vector-wise Sparse Tensor Core [72] and our dual-side sparse
Tensor Core.

On top of the modelled sweep, one Figure 21-sized point is *executed*
numerically: a ``numeric_size^3`` (2048^3 by default) SpGEMM runs
through the K-panel blocked engine (:mod:`repro.core.engine_blocked`)
and contributes a row with its exact measured instruction counts.
"""

from __future__ import annotations

import numpy as np

from repro.hw.config import GpuConfig, V100_CONFIG
from repro.kernels.gemm_cusparse import CusparseGemm
from repro.kernels.gemm_dense import CutlassGemm
from repro.kernels.gemm_dual_sparse import DualSparseGemm
from repro.kernels.gemm_sparse_tc import SparseTensorCoreGemm

#: Matrix A sparsity sweep (fraction of zeros).
A_SPARSITY_POINTS = (0.0, 0.2, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.99, 0.999)
#: (A, B) sparsity of the numerically *executed* SpGEMM point.
NUMERIC_SPARSITY = (0.7, 0.7)
#: Matrix B sparsity curves of the figure.
B_SPARSITY_POINTS = (0.0, 0.2, 0.4, 0.6, 0.8, 0.9, 0.99, 0.999)
#: cuSparse is only reported for A sparsity >= 90% with B at 99%.
CUSPARSE_A_POINTS = (0.9, 0.95, 0.99, 0.999)

#: Paper anchor observations used for shape comparison.
PAPER_ANCHORS = {
    "sparse_tc_speedup": 1.86,
    "ours_a0_b99_speedup": 13.4,
    "ours_a999_b99_speedup": 23.0,
    "ours_break_even_a_sparsity_b_dense": 0.25,
    "cusparse_a999_speedup": 1.67,
}


def run_fig21(
    size: int = 4096,
    config: GpuConfig | None = None,
    numeric_size: int = 2048,
    seed: int = 2021,
) -> list[dict]:
    """Reproduce the Figure 21 sweep.

    Args:
        size: GEMM dimension (M = N = K); 4096 matches the paper, smaller
            values give quicker runs with the same qualitative shape.
        config: optional GPU configuration override.
        numeric_size: dimension of the additional *executed* SpGEMM
            point: a ``numeric_size^3`` product at
            :data:`NUMERIC_SPARSITY` is actually run through the K-panel
            blocked engine and reported with its exact (not modelled)
            instruction counts.  ``0`` disables the point.
        seed: RNG seed for the executed point's random operands.

    Returns:
        One row per (method, A sparsity, B sparsity) with the modelled
        execution time and the speedup over the dense CUTLASS baseline,
        plus the executed numeric point (``ours-functional``).
    """
    cutlass = CutlassGemm(config)
    cusparse = CusparseGemm(config)
    sparse_tc = SparseTensorCoreGemm(config)
    ours = DualSparseGemm(config)

    baseline = cutlass.estimate_from_shape(size, size, size)
    rows = [
        {
            "method": baseline.method,
            "a_sparsity": 0.0,
            "b_sparsity": 0.0,
            "time_us": baseline.time_us,
            "speedup_vs_cutlass": 1.0,
        }
    ]

    # Sparse Tensor Core: a single flat line (75% vector-wise pruning).
    stc = sparse_tc.estimate_from_sparsity(size, size, size, weight_sparsity=0.75)
    rows.append(
        {
            "method": stc.method,
            "a_sparsity": 0.0,
            "b_sparsity": 0.75,
            "time_us": stc.time_us,
            "speedup_vs_cutlass": baseline.time_us / stc.time_us,
        }
    )

    for a_sparsity in CUSPARSE_A_POINTS:
        estimate = cusparse.estimate_from_sparsity(
            size, size, size, a_sparsity, b_sparsity=0.99
        )
        rows.append(
            {
                "method": estimate.method,
                "a_sparsity": a_sparsity,
                "b_sparsity": 0.99,
                "time_us": estimate.time_us,
                "speedup_vs_cutlass": baseline.time_us / estimate.time_us,
            }
        )

    for b_sparsity in B_SPARSITY_POINTS:
        for a_sparsity in A_SPARSITY_POINTS:
            estimate = ours.estimate_from_sparsity(
                size, size, size, a_sparsity, b_sparsity
            )
            rows.append(
                {
                    "method": estimate.method,
                    "a_sparsity": a_sparsity,
                    "b_sparsity": b_sparsity,
                    "time_us": estimate.time_us,
                    "speedup_vs_cutlass": baseline.time_us / estimate.time_us,
                }
            )

    if numeric_size:
        # The executed (not modelled) point: run a numeric_size^3 SpGEMM
        # through the K-panel blocked engine and convert its *exact*
        # issued-OHMMA count to an issue-limited time.  Feasible at
        # Figure 21 sizes (>= 2048^3) only since the blocked engine.
        from repro.core.spgemm_device import device_spgemm
        from repro.sparsity.generators import random_sparse_matrix

        gpu = config or V100_CONFIG
        rng = np.random.default_rng(seed)
        a_sparsity, b_sparsity = NUMERIC_SPARSITY
        a = random_sparse_matrix(
            (numeric_size, numeric_size), 1.0 - a_sparsity, rng
        )
        b = random_sparse_matrix(
            (numeric_size, numeric_size), 1.0 - b_sparsity, rng
        )
        executed = device_spgemm(a, b, backend="blocked")
        issue_cycles = (
            executed.stats.warp.ohmma_issued / gpu.ohmma_slots_per_cycle
        )
        time_us = gpu.cycles_to_us(issue_cycles)
        numeric_baseline = cutlass.estimate_from_shape(
            numeric_size, numeric_size, numeric_size
        )
        rows.append(
            {
                "method": f"ours-functional ({numeric_size}^3 executed)",
                "a_sparsity": a_sparsity,
                "b_sparsity": b_sparsity,
                "time_us": round(time_us, 4),
                "speedup_vs_cutlass": numeric_baseline.time_us / time_us,
            }
        )
    return rows
