"""Chaos soak of the wall-clock socket serving front-end.

Runs a real ``python -m repro.serving.server`` subprocess and drives it
through seeded chaos — dropped connections, garbage and truncated
frames, slow clients, injected worker kills, a SIGKILL + restart, and a
final SIGTERM drain — then checks the robustness invariants the serving
layer promises:

1. **Exactly one terminal response** (``completed`` / ``rejected`` /
   ``failed``) per accepted request, observed client-side (no wire id
   ever receives two terminals) *and* server-side (the ``violations``
   counter stays zero and ``accepted == completed + failed +
   rejected_deadline`` in the health snapshot).
2. **Bit-identity**: every ``completed`` response's output digest equals
   the digest of the local per-image functional oracle
   (:func:`repro.nn.functional.run_model_functional` at the same scale,
   seed and image).
3. **Drain semantics**: after SIGTERM the server finishes in-flight
   work, refuses new arrivals, and exits 0.  After a SIGKILL, a
   restarted server serves the retried requests of the survivors.

Chaos is seeded (:class:`repro.serving.netfaults.NetFaultSchedule`): the
*sequence* of injected faults is a pure function of the seed even though
wall-clock timings are not, so a failing soak names its chaos by seed.

This is deliberately **not** a registered experiment: the golden
snapshot suite pins every registry entry byte-for-byte, and a wall-clock
soak is nondeterministic by nature.  It has its own CLI instead::

    python -m repro.experiments.serve_live --requests 60 --seed 2021

which prints the JSON soak report and exits nonzero if any invariant
failed.  ``tests/serving/test_soak.py`` and the CI soak smoke drive the
same :func:`run_soak` entry point.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import threading
import time
from dataclasses import dataclass
from pathlib import Path

from repro.errors import ConfigError, ReproError
from repro.nn.functional import run_model_functional
from repro.runtime.retry import RetryPolicy
from repro.serving.client import (
    RequestNotServed,
    ServerUnavailable,
    ServingClient,
)
from repro.serving.netfaults import (
    FAULT_DROP_AFTER,
    FAULT_DROP_BEFORE,
    FAULT_GARBAGE,
    FAULT_NONE,
    FAULT_SLOW,
    FAULT_TRUNCATE,
    NetFaultSchedule,
    garbage_bytes,
    open_raw_connection,
    send_garbage,
    slow_send,
    truncated_frame,
)
from repro.serving.protocol import (
    RESPONSE,
    FrameDecoder,
    ProtocolError,
    encode_frame,
    functional_run_digest,
    hello,
    make_request,
)
from repro.serving.server import demo_definitions
from repro.serving.stats import LatencyRecorder


@dataclass(frozen=True)
class SoakConfig:
    """One soak scenario — everything derives from these knobs.

    Attributes:
        seed: chaos + operand seed (shared with the server subprocess).
        requests: logical requests in the chaos phase.
        clients: concurrent client threads driving them.
        images: synthetic image ids cycle over ``range(images)``.
        batch_cap / deadline_ms / queue_depth / workers / max_retries:
            forwarded to the server CLI.
        request_deadline_ms: per-request deadline each client propagates
            (also its total retry budget).
        kill_specs: ``--kill-worker`` specs injected into the server
            (e.g. ``("0:2:after-run",)``).
        chaos_rates: fault mix override for the schedule.
        sigkill_restart: run the SIGKILL + restart + retry phase.
        startup_timeout_s: how long to wait for READY (session compiles).
    """

    seed: int = 2021
    requests: int = 48
    clients: int = 3
    images: int = 4
    batch_cap: int = 4
    deadline_ms: float = 25.0
    queue_depth: int = 16
    workers: int = 2
    max_retries: int = 2
    request_deadline_ms: float = 8000.0
    kill_specs: tuple = ()
    chaos_rates: "dict | None" = None
    sigkill_restart: bool = True
    startup_timeout_s: float = 60.0

    def __post_init__(self) -> None:
        if self.requests < 1:
            raise ConfigError(f"requests must be >= 1, got {self.requests}")
        if self.clients < 1:
            raise ConfigError(f"clients must be >= 1, got {self.clients}")
        if self.images < 1:
            raise ConfigError(f"images must be >= 1, got {self.images}")


class SoakInvariantError(ReproError, AssertionError):
    """A robustness invariant did not hold (the soak's failing verdict)."""


# --------------------------------------------------------------------- #
# Server subprocess handle
# --------------------------------------------------------------------- #
class ServerHandle:
    """A ``repro.serving.server`` subprocess bound to a Unix socket."""

    def __init__(self, socket_path: Path, config: SoakConfig) -> None:
        self.socket_path = Path(socket_path)
        self.config = config
        self.process: "subprocess.Popen | None" = None
        self.ready_info: "dict | None" = None

    def start(self) -> dict:
        """Spawn the server and block until its READY line."""
        src_root = Path(__file__).resolve().parents[2]
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (str(src_root), env.get("PYTHONPATH")) if p
        )
        command = [
            sys.executable, "-m", "repro.serving.server",
            "--unix", str(self.socket_path),
            "--demo-zoo",
            "--seed", str(self.config.seed),
            "--batch-cap", str(self.config.batch_cap),
            "--deadline-ms", str(self.config.deadline_ms),
            "--queue-depth", str(self.config.queue_depth),
            "--workers", str(self.config.workers),
            "--max-retries", str(self.config.max_retries),
        ]
        for spec in self.config.kill_specs:
            # '=' form: an ANY_WORKER spec like '-1:1:after-run' would
            # otherwise be parsed as an option flag.
            command.append(f"--kill-worker={spec}")
        self.process = subprocess.Popen(
            command,
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            text=True,
            env=env,
        )
        deadline = time.monotonic() + self.config.startup_timeout_s
        assert self.process.stdout is not None
        while True:
            if time.monotonic() > deadline:
                self.sigkill()
                raise ConfigError("server did not print READY in time")
            line = self.process.stdout.readline()
            if not line:
                raise ConfigError(
                    "server exited before READY "
                    f"(code {self.process.poll()})"
                )
            if line.startswith("READY "):
                self.ready_info = json.loads(line[len("READY "):])
                return self.ready_info

    @property
    def pid(self) -> int:
        assert self.process is not None
        return self.process.pid

    def sigterm(self) -> None:
        if self.process is not None and self.process.poll() is None:
            self.process.send_signal(signal.SIGTERM)

    def sigkill(self) -> None:
        if self.process is not None and self.process.poll() is None:
            self.process.kill()

    def wait(self, timeout_s: float = 30.0) -> int:
        assert self.process is not None
        code = self.process.wait(timeout=timeout_s)
        if self.process.stdout is not None:
            self.process.stdout.close()
        return code


# --------------------------------------------------------------------- #
# Oracle
# --------------------------------------------------------------------- #
def oracle_digests(config: SoakConfig) -> dict:
    """Digest of the functional oracle per ``(model, image)`` served."""
    digests = {}
    for name, definition in demo_definitions().items():
        for image in range(config.images):
            run = run_model_functional(
                definition,
                scale=definition.benchmark_scale,
                seed=config.seed,
                image=image,
                keep_outputs=True,
            )
            digests[(name, image)] = functional_run_digest(run)
    return digests


def _request_shape(index: int, config: SoakConfig) -> tuple:
    """The (model, image) of logical request ``index`` — pure function."""
    models = tuple(demo_definitions())
    return models[index % len(models)], index % config.images


# --------------------------------------------------------------------- #
# Chaos drivers (one per fault kind)
# --------------------------------------------------------------------- #
class _Ledger:
    """Thread-safe record of every terminal response seen client-side."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.responses: "dict[str, list[dict]]" = {}
        self.errors: "dict[str, str]" = {}

    def record(self, wire_id: str, response: dict) -> None:
        with self._lock:
            self.responses.setdefault(wire_id, []).append(response)

    def record_error(self, wire_id: str, error: BaseException) -> None:
        with self._lock:
            self.errors[wire_id] = f"{type(error).__name__}: {error}"


def _drive_normal(client: ServingClient, rid, model, image, config, ledger):
    try:
        response = client.request(
            model, image, request_id=rid,
            deadline_ms=config.request_deadline_ms,
        )
        ledger.record(response["id"], response)
    except RequestNotServed as error:
        ledger.record(error.response.get("id", rid), error.response)
    except (ServerUnavailable, ProtocolError) as error:
        ledger.record_error(rid, error)


def _drive_drop_before(address) -> None:
    sock = open_raw_connection(address)
    try:
        sock.sendall(encode_frame(hello("chaos-drop-before")))
    finally:
        sock.close()


def _drive_drop_after(address, rid, model, image) -> None:
    sock = open_raw_connection(address)
    try:
        sock.sendall(encode_frame(hello("chaos-drop-after")))
        sock.sendall(encode_frame(make_request(rid, model, image)))
    finally:
        sock.close()  # vanish before the response — it goes undeliverable


def _drive_garbage(address, index: int, config: SoakConfig) -> None:
    send_garbage(address, garbage_bytes(config.seed + index), timeout_s=5.0)


def _drive_truncate(address, rid, model, image) -> None:
    sock = open_raw_connection(address)
    try:
        sock.sendall(encode_frame(hello("chaos-truncate")))
        frame = truncated_frame(make_request(rid, model, image), keep=7)
        sock.sendall(frame)
    finally:
        sock.close()  # announced a frame, never finished it


def _drive_slow(address, rid, model, image, config, ledger) -> None:
    sock = open_raw_connection(address, timeout_s=30.0)
    try:
        sock.sendall(encode_frame(hello("chaos-slow")))
        slow_send(
            sock, encode_frame(make_request(rid, model, image)),
            chunk=3, delay_s=0.002,
        )
        decoder = FrameDecoder()
        while True:
            data = sock.recv(65536)
            if not data:
                ledger.record_error(rid, ServerUnavailable("closed"))
                return
            for message in decoder.feed(data):
                if message.get("type") == RESPONSE and message.get("id") == rid:
                    ledger.record(rid, message)
                    return
    except OSError as error:
        ledger.record_error(rid, error)
    finally:
        sock.close()


def _chaos_worker(
    indices, schedule, address, config, ledger, abandoned, lock
) -> None:
    policy = RetryPolicy(
        max_retries=4, backoff_base_s=0.05, backoff_max_s=1.0,
        deadline_s=config.request_deadline_ms / 1000.0,
    )
    client = ServingClient(address, client="soak", policy=policy)
    try:
        for index in indices:
            kind = schedule.kind(index)
            model, image = _request_shape(index, config)
            rid = f"soak-{index}"
            if kind == FAULT_NONE:
                _drive_normal(client, rid, model, image, config, ledger)
            elif kind == FAULT_DROP_BEFORE:
                _drive_drop_before(address)
            elif kind == FAULT_DROP_AFTER:
                _drive_drop_after(address, rid, model, image)
                with lock:
                    abandoned.add(rid)
            elif kind == FAULT_GARBAGE:
                _drive_garbage(address, index, config)
            elif kind == FAULT_TRUNCATE:
                _drive_truncate(address, rid, model, image)
            elif kind == FAULT_SLOW:
                _drive_slow(address, rid, model, image, config, ledger)
        # Duplicate terminals would be stranded in the client's stash.
        for wire_id, response in client.stash.items():
            ledger.record(wire_id, response)
    finally:
        client.close()


# --------------------------------------------------------------------- #
# Phases
# --------------------------------------------------------------------- #
def _phase_chaos(address, config: SoakConfig, ledger: _Ledger) -> dict:
    schedule = NetFaultSchedule.draw(
        config.seed, config.requests, rates=config.chaos_rates
    )
    abandoned: set[str] = set()
    lock = threading.Lock()
    shards = [
        list(range(shard, config.requests, config.clients))
        for shard in range(config.clients)
    ]
    threads = [
        threading.Thread(
            target=_chaos_worker,
            args=(shard, schedule, address, config, ledger, abandoned, lock),
            name=f"soak-client-{number}",
        )
        for number, shard in enumerate(shards)
        if shard
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return {"schedule": schedule.counts(), "abandoned": sorted(abandoned)}


def _phase_sigkill_restart(
    handle: ServerHandle, config: SoakConfig, ledger: _Ledger
) -> dict:
    """SIGKILL mid-flight, restart on the same socket, retry survivors."""
    client = ServingClient(handle.socket_path, client="soak-kill")
    burst = [f"kill-{n}" for n in range(config.batch_cap * 2)]
    interrupted = []
    killed_code = None
    try:
        for number, rid in enumerate(burst):
            model, image = _request_shape(number, config)
            client.send_request(rid, model, image)
        handle.sigkill()
        killed_code = handle.wait(timeout_s=30.0)
        try:
            got = client.collect(burst)
            for rid, response in got.items():
                ledger.record(rid, response)
        except (ServerUnavailable, ProtocolError):
            pass  # the kill beat the responses — that is the point
        interrupted = [rid for rid in burst if rid not in ledger.responses]
    finally:
        client.close()
    restarted = ServerHandle(handle.socket_path, config)
    restarted.start()
    retry_client = ServingClient(
        handle.socket_path, client="soak-retry",
        policy=RetryPolicy(max_retries=4, backoff_base_s=0.05,
                           backoff_max_s=1.0),
    )
    try:
        for rid in interrupted:
            number = int(rid.split("-")[1])
            model, image = _request_shape(number, config)
            response = retry_client.request(
                model, image, request_id=f"{rid}-retry",
                deadline_ms=config.request_deadline_ms,
            )
            ledger.record(response["id"], response)
    finally:
        retry_client.close()
    return {
        "killed_exit_code": killed_code,
        "interrupted": len(interrupted),
        "retried": len(interrupted),
        "handle": restarted,
    }


def _phase_drain(
    handle: ServerHandle, config: SoakConfig, ledger: _Ledger
) -> dict:
    """SIGTERM: in-flight answered, new arrivals refused, exit 0."""
    client = ServingClient(handle.socket_path, client="soak-drain")
    inflight = [f"drain-{n}" for n in range(config.batch_cap)]
    for number, rid in enumerate(inflight):
        model, image = _request_shape(number, config)
        client.send_request(rid, model, image)
    handle.sigterm()
    try:
        got = client.collect(inflight)
        for rid, response in got.items():
            ledger.record(rid, response)
        drained_inflight = True
    except (ServerUnavailable, ProtocolError):
        drained_inflight = False
    finally:
        client.close()
    # A post-SIGTERM arrival must be refused: either the listener is
    # already gone or the answer is rejected(draining).
    late_refused = False
    late = ServingClient(handle.socket_path, client="soak-late",
                         policy=RetryPolicy(max_retries=0))
    try:
        response = late.request("Demo-CNN", 0)
        late_refused = response.get("status") != "completed"
    except RequestNotServed as error:
        late_refused = error.response.get("reason") == "draining"
    except (ServerUnavailable, ProtocolError):
        late_refused = True  # connection refused: the server is gone
    finally:
        late.close()
    exit_code = handle.wait(timeout_s=30.0)
    return {
        "drained_inflight": drained_inflight,
        "late_refused": late_refused,
        "exit_code": exit_code,
    }


# --------------------------------------------------------------------- #
# Invariant checks + report
# --------------------------------------------------------------------- #
def check_invariants(
    ledger: _Ledger,
    oracle: dict,
    health: "dict | None",
    drain: dict,
) -> dict:
    """Evaluate every soak invariant; raise on the first breach."""
    duplicates = {
        rid: len(responses)
        for rid, responses in ledger.responses.items()
        if len(responses) != 1
    }
    if duplicates:
        raise SoakInvariantError(
            f"requests with != 1 terminal response: {duplicates}"
        )
    mismatched = []
    for rid, (response,) in ledger.responses.items():
        if response.get("status") != "completed":
            continue
        key = (response.get("model"), response.get("image"))
        if response.get("digest") != oracle.get(key):
            mismatched.append(rid)
    if mismatched:
        raise SoakInvariantError(
            f"completed outputs differ from the functional oracle: "
            f"{mismatched}"
        )
    if health is not None:
        if health.get("violations", 0) != 0:
            raise SoakInvariantError(
                f"server counted {health['violations']} "
                "double-terminal violations"
            )
        answered = (
            health.get("completed", 0)
            + health.get("failed", 0)
            + health.get("rejected_deadline", 0)
        )
        if health.get("accepted", 0) != answered:
            raise SoakInvariantError(
                f"accepted ({health.get('accepted')}) != terminally "
                f"answered ({answered})"
            )
    if not drain.get("late_refused", False):
        raise SoakInvariantError("a post-SIGTERM arrival was served")
    if drain.get("exit_code") != 0:
        raise SoakInvariantError(
            f"drain exit code {drain.get('exit_code')} != 0"
        )
    return {
        "exactly_one_terminal": True,
        "digests_match": True,
        "server_accounting": health is not None,
        "drain_refuses_and_exits_zero": True,
    }


def _latency_summary(ledger: _Ledger) -> dict:
    recorder = LatencyRecorder()
    for responses in ledger.responses.values():
        response = responses[0]
        if response.get("status") == "completed":
            recorder.record(
                max(0.0, float(response.get("latency_ms", 0.0)) * 1000.0)
            )
    summary = recorder.summary()
    return {
        "count": summary["latency_count"],
        "p50_ms": summary["p50_latency_us"] / 1000.0,
        "p95_ms": summary["p95_latency_us"] / 1000.0,
        "p99_ms": summary["p99_latency_us"] / 1000.0,
        "mean_ms": summary["mean_latency_us"] / 1000.0,
        "max_ms": summary["max_latency_us"] / 1000.0,
    }


def run_soak(config: SoakConfig, workdir) -> dict:
    """Run the full soak scenario; return the report (raises on breach)."""
    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    socket_path = workdir / "serve.sock"
    oracle = oracle_digests(config)
    ledger = _Ledger()
    handle = ServerHandle(socket_path, config)
    handle.start()
    try:
        chaos = _phase_chaos(str(socket_path), config, ledger)
        if config.sigkill_restart:
            kill_report = _phase_sigkill_restart(handle, config, ledger)
            handle = kill_report.pop("handle")
        else:
            kill_report = {"skipped": True}
        # The final lifetime's health snapshot, before it drains.
        probe = ServingClient(socket_path, client="soak-health")
        try:
            health = probe.health()
        finally:
            probe.close()
        drain = _phase_drain(handle, config, ledger)
    finally:
        handle.sigkill()  # no-op when the drain already exited
    invariants = check_invariants(ledger, oracle, health, drain)
    outcomes: dict = {}
    for (response,) in ledger.responses.values():
        key = f"{response.get('status')}:{response.get('reason') or '-'}"
        outcomes[key] = outcomes.get(key, 0) + 1
    return {
        "experiment": "serve_live",
        "seed": config.seed,
        "requests": config.requests,
        "clients": config.clients,
        "chaos": chaos,
        "sigkill": kill_report,
        "drain": drain,
        "outcomes": dict(sorted(outcomes.items())),
        "client_errors": len(ledger.errors),
        "latency_ms": _latency_summary(ledger),
        "health": health,
        "invariants": invariants,
        "ok": True,
    }


# --------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------- #
def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.serve_live", description=__doc__
    )
    parser.add_argument("--seed", type=int, default=2021)
    parser.add_argument("--requests", type=int, default=48)
    parser.add_argument("--clients", type=int, default=3)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument(
        "--kill-worker", action="append", default=[], metavar="W:SEQ[:at]",
        help="forwarded to the server (injected worker kills)",
    )
    parser.add_argument(
        "--no-sigkill", action="store_true",
        help="skip the SIGKILL + restart phase",
    )
    parser.add_argument("--out", type=Path, default=None,
                        help="also write the JSON report here")
    args = parser.parse_args(argv)
    config = SoakConfig(
        seed=args.seed,
        requests=args.requests,
        clients=args.clients,
        workers=args.workers,
        kill_specs=tuple(args.kill_worker),
        sigkill_restart=not args.no_sigkill,
    )
    with tempfile.TemporaryDirectory(prefix="serve-live-") as workdir:
        try:
            report = run_soak(config, workdir)
        except SoakInvariantError as error:
            print(json.dumps({"ok": False, "invariant": str(error)}))
            return 1
    print(json.dumps(report, indent=2, sort_keys=True))
    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(json.dumps(report, indent=2, sort_keys=True))
    return 0


if __name__ == "__main__":
    sys.exit(main())
