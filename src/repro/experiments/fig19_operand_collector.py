"""Figures 18/19 — accumulation-buffer bank conflicts and the collector.

Replays the sparse-mode accumulation traffic of outer-product steps with
random non-zero placement against the banked accumulation buffer, with
and without the operand collector, and reports the cycles needed to drain
the same accesses — the schedule-compaction effect of Figure 19.
"""

from __future__ import annotations

import numpy as np

from repro.hw.accumulation_buffer import AccumulationBuffer, AccumulationBufferConfig
from repro.hw.config import GpuConfig, V100_CONFIG


def buffer_config_from_gpu(config: GpuConfig) -> AccumulationBufferConfig:
    """Derive the accumulation-buffer geometry from a device preset."""
    return AccumulationBufferConfig(
        size_bytes=config.accumulation_buffer_kb * 1024,
        num_banks=config.accumulation_banks,
        ports=config.accumulation_ports,
    )


def run_fig19(
    num_instructions: int = 64,
    accesses_per_instruction: int = 16,
    seed: int = 2021,
    config: GpuConfig | None = None,
) -> list[dict]:
    """Compare drain cycles with and without the operand collector.

    Args:
        num_instructions: sparse-mode OHMMA instructions replayed.
        accesses_per_instruction: scattered accumulator writes per
            instruction at the 50% density point.
        seed: RNG seed for the random accumulator positions.
        config: GPU configuration; its ``accumulation_*`` fields define
            the buffer geometry (banks, ports, capacity) being replayed.
    """
    buffer_config = buffer_config_from_gpu(config or V100_CONFIG)
    rng = np.random.default_rng(seed)
    rows = []
    for density_label, accesses in (
        ("dense-mode (wired ports)", None),
        ("sparse 50%", accesses_per_instruction),
        ("sparse 25%", max(1, accesses_per_instruction // 2)),
    ):
        buffer = AccumulationBuffer(buffer_config)
        if accesses is None:
            cycles_without = buffer.dense_mode_cycles(num_instructions)
            rows.append(
                {
                    "mode": density_label,
                    "instructions": num_instructions,
                    "cycles_without_collector": cycles_without,
                    "cycles_with_collector": cycles_without,
                    "collector_speedup": 1.0,
                }
            )
            continue
        batches = [
            rng.integers(0, buffer.config.capacity_words, size=accesses)
            for _ in range(num_instructions)
        ]
        without = buffer.sparse_mode_cycles(batches, use_collector=False)
        with_collector = buffer.sparse_mode_cycles(batches, use_collector=True)
        rows.append(
            {
                "mode": density_label,
                "instructions": num_instructions,
                "cycles_without_collector": without.cycles,
                "cycles_with_collector": with_collector.cycles,
                "collector_speedup": without.cycles / max(1, with_collector.cycles),
            }
        )
    return rows
