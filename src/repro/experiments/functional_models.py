"""Functional whole-model sweeps through the vectorized SpGEMM engine.

Complements the analytic Figure 22 driver: instead of cost-model
estimates, every representative layer of the selected models — by
default the *whole* Figure 22 / Table II zoo, CNNs and GEMM models
alike — is actually *executed* by the functional dual-side pipeline
(sparse im2col + outer-product SpGEMM) at full resolution
(``scale=1.0``), and the exact per-layer instruction statistics are
reported.  The ``pruning`` knob swaps every model's native pruning
pattern for any named method of the pruning suite.  Such runs were
impractical with the seed's per-warp-tile Python loop; the vectorized
engine (:mod:`repro.core.engine`) brought them into the seconds range
at ``scale=0.125``, and the K-panel blocked engine
(:mod:`repro.core.engine_blocked`) lifts the paper-sized layers into
the same budget.
"""

from __future__ import annotations

from repro.core.spgemm_warp import WarpTileConfig
from repro.hw.config import GpuConfig, V100_CONFIG
from repro.nn.functional import run_model_functional
from repro.nn.models import DEFAULT_MODELS


def run_functional_models(
    models: tuple[str, ...] | None = None,
    scale: float = 1.0,
    seed: int = 2021,
    config: GpuConfig | None = None,
    tile_config: WarpTileConfig | None = None,
    backend: str = "auto",
    pruning: "str | None" = None,
) -> list[dict]:
    """Execute whole models functionally and tabulate exact statistics.

    Args:
        models: model names to run (defaults to the whole zoo,
            :data:`repro.nn.models.DEFAULT_MODELS`).
        scale: data-dimension shrink factor forwarded to
            :func:`repro.nn.functional.run_model_functional`.
        seed: RNG seed for the synthetic pruned operands.
        config: GPU configuration used to convert the exact OHMMA counts
            to an issue-limited device time per model.
        tile_config: warp-tile geometry override.
        backend: SpGEMM backend (``"auto"``, ``"blocked"``,
            ``"vectorized"`` or ``"reference"``).
        pruning: named pruning method from
            :data:`repro.pruning.methods.PRUNING_METHODS` applied to
            every model's weights instead of its native pattern
            (``None`` — reported as ``native`` in the rows).

    Returns:
        One row per (model, layer) plus a ``full-model`` row per model,
        each with the executed GEMM shape, measured sparsities, issued /
        dense OHMMA counts and the exact instruction speedup.
    """
    config = config or V100_CONFIG
    names = models or DEFAULT_MODELS
    rows: list[dict] = []
    for name in names:
        run = run_model_functional(
            name, scale=scale, seed=seed, config=tile_config, backend=backend,
            pruning=pruning,
        )
        for layer in run.layers:
            rows.append(
                {
                    "model": name,
                    "pruning": pruning or "native",
                    "layer": layer.layer,
                    "gemm_mkn": "x".join(str(d) for d in layer.gemm_shape),
                    "weight_sparsity": round(layer.weight_sparsity, 4),
                    "activation_sparsity": round(layer.activation_sparsity, 4),
                    "ohmma_issued": layer.stats.warp.ohmma_issued,
                    "ohmma_dense": layer.stats.warp.ohmma_dense,
                    "instruction_speedup": round(layer.instruction_speedup, 3),
                    "issue_time_us": round(
                        config.cycles_to_us(
                            layer.stats.warp.ohmma_issued
                            / config.ohmma_slots_per_cycle
                        ),
                        4,
                    ),
                }
            )
        issue_cycles = run.ohmma_issued / config.ohmma_slots_per_cycle
        rows.append(
            {
                "model": name,
                "pruning": pruning or "native",
                "layer": "full-model",
                "gemm_mkn": "-",
                "weight_sparsity": "-",
                "activation_sparsity": "-",
                "ohmma_issued": run.ohmma_issued,
                "ohmma_dense": run.ohmma_dense,
                "instruction_speedup": round(run.instruction_speedup, 3),
                "issue_time_us": round(config.cycles_to_us(issue_cycles), 4),
            }
        )
    return rows
