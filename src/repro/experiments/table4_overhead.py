"""Table IV — area and power overhead of the added hardware."""

from __future__ import annotations

from repro.hw.area_model import AreaPowerModel
from repro.hw.config import GpuConfig

#: Paper-reported component estimates (mm^2 at 12 nm, W).
PAPER_TABLE4 = {
    "Float Point Adders": (0.121, 2.35),
    "Accumulation Operand Collector": (1.51, 0.46),
    "Shared Accumulation Buffer": (11.215, 1.08),
    "Total overhead on V100": (12.846, 3.89),
}


def run_table4(config: GpuConfig | None = None) -> list[dict]:
    """Reproduce Table IV with the analytic area/power model."""
    model = AreaPowerModel(config)
    report = model.report()
    rows = []
    for row in report.as_rows():
        paper_area, paper_power = PAPER_TABLE4.get(row["module"], (None, None))
        rows.append(
            {
                "module": row["module"],
                "area_mm2": row["area_mm2"],
                "power_w": row["power_w"],
                "paper_area_mm2": paper_area,
                "paper_power_w": paper_power,
            }
        )
    rows.append(
        {
            "module": "Fraction of V100",
            "area_mm2": report.area_fraction,
            "power_w": report.power_fraction,
            "paper_area_mm2": 0.015,
            "paper_power_w": 0.016,
        }
    )
    return rows
