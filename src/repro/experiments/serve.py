"""Serving-throughput sweep over compiled inference sessions.

Complements the ``functional`` experiment: instead of one image through
one-shot pipelines, each selected model is *compiled* once
(:func:`repro.nn.session.compile_model` — weights materialised and
encoded once) and then serves batches of increasing size through the
batch-folding session runtime.  Rows report the exact fused instruction
counts, the issue-limited device time on the selected GPU preset and the
modelled serving throughput derived from it.

All reported fields are deterministic functions of (models, batch sizes,
scale, seed, GPU preset), so the rows are golden-snapshotted and cached
like every other experiment; *wall-clock* throughput of the host
implementation is gated separately in
``benchmarks/test_serve_throughput.py``.
"""

from __future__ import annotations

from repro.core.spgemm_warp import WarpTileConfig
from repro.hw.config import GpuConfig, V100_CONFIG
from repro.nn.models import DEFAULT_MODELS
from repro.nn.session import SessionRun, compile_model

#: Batch sizes of the default sweep.
DEFAULT_BATCH_SIZES = (1, 2, 4, 8)


def run_serve(
    models: "tuple[str, ...] | None" = None,
    batch_sizes: "tuple[int, ...] | None" = None,
    scale: float = 1.0,
    seed: int = 2021,
    config: GpuConfig | None = None,
    tile_config: WarpTileConfig | None = None,
    backend: str = "auto",
    pruning: "str | None" = None,
) -> list[dict]:
    """Serve batches through compiled sessions and tabulate throughput.

    Args:
        models: model names to compile (defaults to the whole zoo,
            :data:`repro.nn.models.DEFAULT_MODELS`).
        batch_sizes: batch sizes to serve per model (defaults to
            :data:`DEFAULT_BATCH_SIZES`).
        scale: data-dimension shrink factor forwarded to the session.
        seed: RNG seed of the synthetic pruned operands.
        config: GPU configuration used to convert exact OHMMA counts to
            issue-limited device time and modelled images/sec.
        tile_config: warp-tile geometry override.
        backend: SpGEMM backend, resolved per per-image GEMM shape.
        pruning: named pruning method from
            :data:`repro.pruning.methods.PRUNING_METHODS` applied to
            every model's weights instead of its native pattern
            (``None`` — reported as ``native`` in the rows).

    Returns:
        One row per (model, batch size) with the fused batch statistics,
        per-image issue time and modelled serving throughput, plus the
        encode-once weight footprint of each compiled session.
    """
    config = config or V100_CONFIG
    names = models or DEFAULT_MODELS
    sizes = [int(batch) for batch in (batch_sizes or DEFAULT_BATCH_SIZES)]
    rows: list[dict] = []
    for name in names:
        compiled = compile_model(
            name,
            scale=scale,
            seed=seed,
            tile_config=tile_config,
            backend=backend,
            pruning=pruning,
        )
        weight_dense = compiled.weight_bytes_dense()
        weight_encoded = compiled.weight_bytes_encoded()
        # Every batch of size b serves images 0..b-1, so one run at the
        # largest size yields every smaller batch's exact statistics as
        # per-image prefix sums — no overlapping re-execution.
        largest = compiled.run(max(sizes))
        for batch in sizes:
            run = SessionRun(
                model=largest.model,
                images=largest.images[:batch],
                per_image=largest.per_image[:batch],
            )
            issue_us = config.cycles_to_us(
                run.ohmma_issued / config.ohmma_slots_per_cycle
            )
            rows.append(
                {
                    "model": name,
                    "pruning": pruning or "native",
                    "batch": batch,
                    "layers": len(compiled.layers),
                    "ohmma_issued": run.ohmma_issued,
                    "ohmma_dense": run.ohmma_dense,
                    "instruction_speedup": round(run.instruction_speedup, 3),
                    "issue_time_us": round(issue_us, 4),
                    "per_image_issue_us": round(issue_us / batch, 4),
                    "modelled_images_per_sec": round(
                        batch / (issue_us * 1e-6), 1
                    )
                    if issue_us
                    else 0.0,
                    "weight_bytes_dense": weight_dense,
                    "weight_bytes_encoded": weight_encoded,
                    # Weight-side encodes a per-image pipeline would have
                    # re-run for this batch; the session ran them 0 times.
                    "weight_encodes_skipped": batch * len(compiled.layers),
                }
            )
    return rows
