"""Experiment drivers: one module per table / figure of the paper.

Each module exposes a ``run_*`` function returning plain rows (lists of
dictionaries) so the same code backs the unit tests, the pytest-benchmark
harnesses in ``benchmarks/`` and the command-line report
(``python -m repro.experiments.runner``).
"""

from repro.experiments.table2_models import run_table2
from repro.experiments.table3_im2col import run_table3
from repro.experiments.fig21_spgemm import run_fig21
from repro.experiments.fig22_models import run_fig22
from repro.experiments.table4_overhead import run_table4
from repro.experiments.fig5_warp_skipping import run_fig5
from repro.experiments.fig6_tiling_speedup import run_fig6
from repro.experiments.fig19_operand_collector import run_fig19
from repro.experiments.report import format_rows

__all__ = [
    "run_table2",
    "run_table3",
    "run_fig21",
    "run_fig22",
    "run_table4",
    "run_fig5",
    "run_fig6",
    "run_fig19",
    "format_rows",
]
