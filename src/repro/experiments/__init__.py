"""Experiment drivers: one module per table / figure of the paper.

Each module exposes a ``run_*`` function returning plain rows (lists of
dictionaries) so the same code backs the unit tests, the pytest-benchmark
harnesses in ``benchmarks/``, the parallel/cached sweep runtime
(:mod:`repro.runtime`) and the command-line report
(``python -m repro.experiments.runner``).

The re-exports below are resolved lazily (PEP 562): the runner's cached
path and the registry must be importable without paying for the model
zoo and kernel cost models behind every driver.
"""

from __future__ import annotations

import importlib

_LAZY_EXPORTS = {
    "run_table2": "repro.experiments.table2_models",
    "run_table3": "repro.experiments.table3_im2col",
    "run_table4": "repro.experiments.table4_overhead",
    "run_fig5": "repro.experiments.fig5_warp_skipping",
    "run_fig6": "repro.experiments.fig6_tiling_speedup",
    "run_fig19": "repro.experiments.fig19_operand_collector",
    "run_fig21": "repro.experiments.fig21_spgemm",
    "run_fig22": "repro.experiments.fig22_models",
    "run_functional_models": "repro.experiments.functional_models",
    "format_rows": "repro.experiments.report",
    "EXPERIMENTS": "repro.experiments.registry",
    "ExperimentSpec": "repro.experiments.registry",
    "get_experiment": "repro.experiments.registry",
}

__all__ = list(_LAZY_EXPORTS)


def __getattr__(name: str):
    try:
        module = _LAZY_EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    return getattr(importlib.import_module(module), name)


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(__all__))
