"""Small helpers to print experiment rows as aligned text tables."""

from __future__ import annotations

from typing import Iterable, Mapping


def format_rows(rows: Iterable[Mapping], title: str | None = None) -> str:
    """Render a list of dict rows as an aligned plain-text table."""
    rows = [dict(row) for row in rows]
    if not rows:
        return f"{title or ''}\n(no rows)"
    columns = list(rows[0].keys())
    widths = {
        column: max(len(str(column)), *(len(_fmt(row.get(column))) for row in rows))
        for column in columns
    }
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(str(column).ljust(widths[column]) for column in columns)
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        lines.append(
            "  ".join(_fmt(row.get(column)).ljust(widths[column]) for column in columns)
        )
    return "\n".join(lines)


def _fmt(value) -> str:
    """Format one cell: floats get 3 significant decimals."""
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)
