"""Legacy setup shim.

The offline evaluation environment lacks the ``wheel`` package, so PEP
517 editable installs cannot build a wheel.  This shim lets
``pip install -e . --no-build-isolation --no-use-pep517`` (or plain
``python setup.py develop``) install the package via the classic
setuptools path.  All project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
