"""Vectorized conv-pipeline speedup over the reference loops.

Times both backends of the functional dual-side convolution — bitmap
im2col chained into the outer-product SpGEMM — on the *full-resolution*
Table III ResNet-18 layer (56x56 feature map, 3x3 kernel, 128 channels,
90% activation / 75% weight sparsity).  Asserts that the vectorized
pipeline keeps its >= 20x advantage while staying bit-identical (lowered
matrix, encoding, numeric output and every statistics field), and
appends the measurement to the JSON trajectory at
``benchmarks/results/spconv_speedup.json`` so speedup history survives
across runs.
"""

from __future__ import annotations

import json
import time
from datetime import datetime, timezone
from pathlib import Path

import numpy as np

from repro.core.im2col_bitmap import bitmap_im2col
from repro.core.spconv import sparse_conv2d
from repro.sparsity.generators import random_sparse_matrix

CHANNELS, HEIGHT, WIDTH = 128, 56, 56
FILTERS, KERNEL, STRIDE, PADDING = 128, 3, 1, 1
ACTIVATION_DENSITY = 0.1
WEIGHT_DENSITY = 0.25
MIN_SPEEDUP = 20.0
TRAJECTORY_PATH = Path(__file__).parent / "results" / "spconv_speedup.json"


def _timed(func) -> float:
    """Wall-clock seconds of one call."""
    start = time.perf_counter()
    func()
    return time.perf_counter() - start


def _append_trajectory(row: dict) -> None:
    """Append one measurement to the bench JSON trajectory."""
    TRAJECTORY_PATH.parent.mkdir(parents=True, exist_ok=True)
    if TRAJECTORY_PATH.exists():
        trajectory = json.loads(TRAJECTORY_PATH.read_text())
    else:
        trajectory = []
    trajectory.append(row)
    TRAJECTORY_PATH.write_text(json.dumps(trajectory, indent=2) + "\n")


def _workload():
    rng = np.random.default_rng(2021)
    feature_map = random_sparse_matrix(
        (CHANNELS * HEIGHT, WIDTH), ACTIVATION_DENSITY, rng
    ).reshape(CHANNELS, HEIGHT, WIDTH)
    weights = random_sparse_matrix(
        (FILTERS, CHANNELS * KERNEL * KERNEL), WEIGHT_DENSITY, rng
    ).reshape(FILTERS, CHANNELS, KERNEL, KERNEL)
    return feature_map, weights


def test_bench_spconv_speedup_table3_layer(benchmark):
    feature_map, weights = _workload()

    # The im2col stage alone must be bit-exact: lowered values, condensed
    # encoding and every stats field.
    reference_im2col = bitmap_im2col(
        feature_map, KERNEL, STRIDE, PADDING, backend="reference"
    )
    vectorized_im2col = bitmap_im2col(
        feature_map, KERNEL, STRIDE, PADDING, backend="vectorized"
    )
    assert np.array_equal(reference_im2col.lowered, vectorized_im2col.lowered)
    assert np.array_equal(
        reference_im2col.encoding.bitmap, vectorized_im2col.encoding.bitmap
    )
    assert np.array_equal(
        reference_im2col.encoding.values, vectorized_im2col.encoding.values
    )
    assert reference_im2col.stats == vectorized_im2col.stats

    start = time.perf_counter()
    reference = sparse_conv2d(
        feature_map, weights, STRIDE, PADDING, backend="reference"
    )
    reference_seconds = time.perf_counter() - start

    # Pin backend="vectorized": this benchmark gates the *vectorized*
    # pipeline's bit-identity with the reference loops; the default
    # "auto" would route this lowered shape to the blocked engine.
    vectorized = benchmark(
        sparse_conv2d, feature_map, weights, STRIDE, PADDING,
        backend="vectorized",
    )
    # Best-of-N wall clock for the assertion below: a single sample is
    # too exposed to scheduler noise for a hard CI gate.
    vectorized_seconds = min(
        _timed(
            lambda: sparse_conv2d(
                feature_map, weights, STRIDE, PADDING, backend="vectorized"
            )
        )
        for _ in range(3)
    )

    assert np.array_equal(reference.output, vectorized.output)
    assert reference.stats == vectorized.stats

    speedup = reference_seconds / vectorized_seconds
    _append_trajectory(
        {
            "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
            "workload": (
                f"spconv {CHANNELS}x{HEIGHT}x{WIDTH} K={KERNEL} N={FILTERS} "
                "(Table III ResNet-18 layer, full resolution)"
            ),
            "activation_density": ACTIVATION_DENSITY,
            "weight_density": WEIGHT_DENSITY,
            "reference_seconds": round(reference_seconds, 4),
            "vectorized_seconds": round(vectorized_seconds, 4),
            "speedup": round(speedup, 2),
        }
    )
    assert speedup >= MIN_SPEEDUP, (
        f"vectorized conv pipeline only {speedup:.1f}x faster than the "
        f"reference loops (required: {MIN_SPEEDUP:.0f}x)"
    )
