"""Benchmarks for the sweep runtime: fresh vs cached, single vs multi-GPU.

The cached benchmark is the headline number: restoring a full quick
sweep from the content-addressed cache must be far faster than
recomputing it (the CLI acceptance bar is >=5x including interpreter
startup; the in-process ratio is far higher).
"""

import pytest

from repro.runtime.cache import ResultCache
from repro.runtime.executor import ExperimentTask, run_tasks
from repro.runtime.sweep import SweepSpec, run_sweep

TASKS = [
    ExperimentTask(experiment="table3", quick=True),
    ExperimentTask(experiment="fig5", quick=True),
    ExperimentTask(experiment="fig19", quick=True),
    ExperimentTask(experiment="fig21", quick=True),
]


def test_fresh_quick_tasks(one_shot, tmp_path):
    results = one_shot(run_tasks, TASKS, cache=ResultCache(tmp_path))
    assert len(results) == len(TASKS)
    assert not any(result.cached for result in results)


def test_cached_quick_tasks(benchmark, tmp_path):
    cache = ResultCache(tmp_path)
    warm = run_tasks(TASKS, cache=cache)
    results = benchmark(run_tasks, TASKS, cache=cache)
    assert all(result.cached for result in results)
    assert [result.rows for result in results] == [result.rows for result in warm]


def test_multi_gpu_quick_sweep(one_shot, tmp_path):
    spec = SweepSpec(
        experiments=("fig19", "fig21"),
        gpus=("v100", "a100", "t4", "jetson-xavier"),
        quick=True,
    )
    result = one_shot(run_sweep, spec, cache=ResultCache(tmp_path))
    assert len(result.results) == 8
    rows = result.rows()
    assert {row["gpu"] for row in rows} == {"v100", "a100", "t4", "jetson-xavier"}
