"""Benchmark: regenerate Table II (evaluated models and pruning setup)."""

from repro.experiments.table2_models import run_table2
from repro.nn.models import DEFAULT_MODELS


def test_table2_models(benchmark):
    rows = benchmark(run_table2)
    # Table II lists exactly the zoo, in registry order.
    assert tuple(row["model"] for row in rows) == DEFAULT_MODELS
    nlp = [row for row in rows if row["model"] in ("BERT-base Encoder", "RNN")]
    assert all(row["mean_weight_sparsity"] > 0.85 for row in nlp)
