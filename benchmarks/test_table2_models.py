"""Benchmark: regenerate Table II (evaluated models and pruning setup)."""

from repro.experiments.table2_models import run_table2


def test_table2_models(benchmark):
    rows = benchmark(run_table2)
    assert len(rows) == 5
    nlp = [row for row in rows if row["model"] in ("BERT-base Encoder", "RNN")]
    assert all(row["mean_weight_sparsity"] > 0.85 for row in nlp)
