"""Ablation benchmarks for the design choices DESIGN.md calls out.

Three ablations:

* warp-tile / accumulation-buffer size (Section III-B3's constraint),
* the two-level bitmap's warp-level skip (Figure 9) on clustered weights,
* the operand-collector depth of the accumulation buffer (Figure 19).
"""

import numpy as np

from repro.core.spgemm_device import count_device_instructions
from repro.core.spgemm_warp import WarpTileConfig
from repro.hw.accumulation_buffer import AccumulationBuffer, AccumulationBufferConfig
from repro.pruning.movement import block_movement_prune
from repro.sparsity.generators import random_sparse_matrix


def test_ablation_warp_tile_size(one_shot):
    """Larger warp tiles skip more, at quadratically growing buffer cost."""
    rng = np.random.default_rng(5)
    a = random_sparse_matrix((256, 256), 0.35, rng)
    b = random_sparse_matrix((256, 256), 0.15, rng)

    def sweep():
        return {
            tile: count_device_instructions(
                a, b, config=WarpTileConfig(tm=tile, tn=tile)
            ).instruction_speedup
            for tile in (16, 32, 64)
        }

    speedups = one_shot(sweep)
    assert speedups[16] <= speedups[32] <= speedups[64]
    assert speedups[32] > 1.5


def test_ablation_two_level_bitmap_on_clustered_weights(one_shot):
    """Whole-warp skipping only pays off when zeros are clustered."""
    rng = np.random.default_rng(6)
    dense_values = rng.uniform(0.5, 1.5, size=(512, 512))
    clustered = block_movement_prune(dense_values, 0.9, block=32)
    unstructured = np.where(rng.random((512, 512)) >= 0.9, dense_values, 0.0)
    activations = rng.uniform(0.5, 1.5, size=(512, 512))

    def sweep():
        return (
            count_device_instructions(clustered, activations),
            count_device_instructions(unstructured, activations),
        )

    clustered_counts, unstructured_counts = one_shot(sweep)
    assert clustered_counts.warp_tile_pairs_skipped > 0
    assert unstructured_counts.warp_tile_pairs_skipped == 0
    assert (
        clustered_counts.instruction_speedup > unstructured_counts.instruction_speedup
    )


def test_ablation_operand_collector_depth(one_shot):
    """Deeper collector windows hide more bank conflicts."""
    rng = np.random.default_rng(7)
    batches = [rng.integers(0, 1024, size=64) for _ in range(64)]

    def sweep():
        results = {}
        for depth in (1, 2, 4, 8):
            buffer = AccumulationBuffer(AccumulationBufferConfig(collector_depth=depth))
            results[depth] = buffer.sparse_mode_cycles(batches).cycles
        return results

    cycles = one_shot(sweep)
    assert cycles[8] <= cycles[4] <= cycles[2] <= cycles[1]
    assert cycles[8] < cycles[1]
