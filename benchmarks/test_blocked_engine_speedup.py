"""Blocked-engine speedup over the per-step vectorized engine.

Times the K-panel blocked engine against the per-step vectorized engine
on Figure 21-sized SpGEMMs (1024^3 and 2048^3 at (0.7, 0.7) sparsity)
and on a full-resolution (``scale=1.0``) functional ResNet-18 run,
asserts the >= 5x advantage at 2048^3 with bit-identical statistics and
exact numeric output (the operands are integer-valued, so the panel
re-association is exact), and appends the measurements to the JSON
trajectory at ``benchmarks/results/blocked_speedup.json`` so speedup
history survives across runs.
"""

from __future__ import annotations

import json
import time
from datetime import datetime, timezone
from pathlib import Path

import numpy as np

from repro.core.spgemm_device import device_spgemm
from repro.nn.functional import run_model_functional

SPARSITY = 0.7
MIN_SPEEDUP_2048 = 5.0
TRAJECTORY_PATH = Path(__file__).parent / "results" / "blocked_speedup.json"


def _timed(func):
    """(wall-clock seconds, result) of one call."""
    start = time.perf_counter()
    result = func()
    return time.perf_counter() - start, result


def _append_trajectory(row: dict) -> None:
    """Append one measurement to the bench JSON trajectory."""
    TRAJECTORY_PATH.parent.mkdir(parents=True, exist_ok=True)
    if TRAJECTORY_PATH.exists():
        trajectory = json.loads(TRAJECTORY_PATH.read_text())
    else:
        trajectory = []
    trajectory.append(row)
    TRAJECTORY_PATH.write_text(json.dumps(trajectory, indent=2) + "\n")


def _integer_operands(size: int, seed: int):
    """Integer-valued sparse operands: panel re-association is exact,
    so the speedup gate can also assert bit-equality of the outputs."""
    rng = np.random.default_rng(seed)
    a = np.where(
        rng.random((size, size)) < 1.0 - SPARSITY,
        rng.integers(-8, 9, (size, size)),
        0,
    ).astype(np.float64)
    b = np.where(
        rng.random((size, size)) < 1.0 - SPARSITY,
        rng.integers(-8, 9, (size, size)),
        0,
    ).astype(np.float64)
    return a, b


def test_bench_blocked_engine_speedup(benchmark):
    sizes = {}
    for size in (1024, 2048):
        a, b = _integer_operands(size, seed=size)
        vectorized_seconds, vectorized = _timed(
            lambda: device_spgemm(a, b, backend="vectorized")
        )
        # Best-of-N wall clock for the gate below: a sub-second sample is
        # too exposed to scheduler noise for a hard CI assertion.
        blocked_seconds, blocked = min(
            _timed(lambda: device_spgemm(a, b, backend="blocked"))
            for _ in range(3)
        )
        assert np.array_equal(vectorized.output, blocked.output)
        assert vectorized.stats == blocked.stats
        sizes[size] = (vectorized_seconds, blocked_seconds)

    # pytest-benchmark stats for the 2048^3 blocked run.
    a, b = _integer_operands(2048, seed=2048)
    benchmark(device_spgemm, a, b, backend="blocked")

    functional_seconds, run = _timed(
        lambda: run_model_functional("ResNet-18", scale=1.0, seed=2021)
    )
    assert run.ohmma_issued > 0

    speedup_2048 = sizes[2048][0] / sizes[2048][1]
    _append_trajectory(
        {
            "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
            "workload": f"spgemm 1024^3 + 2048^3 at ({SPARSITY}, {SPARSITY})",
            "vectorized_seconds_1024": round(sizes[1024][0], 4),
            "blocked_seconds_1024": round(sizes[1024][1], 4),
            "speedup_1024": round(sizes[1024][0] / sizes[1024][1], 2),
            "vectorized_seconds_2048": round(sizes[2048][0], 4),
            "blocked_seconds_2048": round(sizes[2048][1], 4),
            "speedup_2048": round(speedup_2048, 2),
            "functional_resnet18_scale1_seconds": round(functional_seconds, 4),
        }
    )
    assert speedup_2048 >= MIN_SPEEDUP_2048, (
        f"blocked engine only {speedup_2048:.1f}x faster than the "
        f"vectorized engine at 2048^3 (required: {MIN_SPEEDUP_2048:.0f}x)"
    )
