"""Benchmark: regenerate Figure 22 (layer-wise and full-model speedups).

The two tests split the zoo along the paper's own axis — CNN models
through the implicit-im2col conv methods, NLP/RNN models through the
GEMM methods — and together must cover every model of
:data:`repro.nn.models.DEFAULT_MODELS` (asserted below, so a model added
to the registry without a Figure 22 benchmark fails here).
"""

from repro.experiments.fig22_models import run_fig22
from repro.nn.models import DEFAULT_MODELS, get_model

CNN_MODELS = tuple(m for m in DEFAULT_MODELS if get_model(m).kind == "cnn")
NLP_MODELS = tuple(m for m in DEFAULT_MODELS if get_model(m).kind != "cnn")


def _full_model(rows, model):
    return {
        row["method"]: row["speedup_vs_baseline"]
        for row in rows
        if row["model"] == model and row["layer"] == "full-model"
    }


def test_fig22_split_covers_whole_zoo():
    assert CNN_MODELS + NLP_MODELS == DEFAULT_MODELS
    assert CNN_MODELS == ("VGG-16", "ResNet-18", "Mask R-CNN")
    assert NLP_MODELS == ("BERT-base Encoder", "RNN")


def test_fig22_cnn_models(one_shot):
    rows = one_shot(run_fig22, models=CNN_MODELS)
    for model in CNN_MODELS:
        summary = _full_model(rows, model)
        # Paper shape: Dual Sparse Implicit > Single Sparse Implicit >
        # Dense Implicit (baseline), and explicit variants trail implicit.
        assert summary["Dual Sparse Implicit"] > summary["Single Sparse Implicit"] > 1.0
        assert summary["Dense Explicit"] < 1.0
        assert summary["Dual Sparse Implicit"] > 1.8


def test_fig22_nlp_models(one_shot):
    rows = one_shot(run_fig22, models=NLP_MODELS)
    for model in NLP_MODELS:
        summary = _full_model(rows, model)
        assert summary["Dual Sparse GEMM"] > summary["Single Sparse GEMM"] > 1.0
    # The RNN's >90% weight sparsity pushes well past the Sparse Tensor
    # Core's fixed 75% limit (paper: 3.6-8.45x).
    assert _full_model(rows, "RNN")["Dual Sparse GEMM"] > 3.0
