"""Benchmark: regenerate Figure 22 (layer-wise and full-model speedups)."""

from repro.experiments.fig22_models import run_fig22


def _full_model(rows, model):
    return {
        row["method"]: row["speedup_vs_baseline"]
        for row in rows
        if row["model"] == model and row["layer"] == "full-model"
    }


def test_fig22_cnn_models(one_shot):
    rows = one_shot(run_fig22, models=("VGG-16", "ResNet-18", "Mask R-CNN"))
    for model in ("VGG-16", "ResNet-18", "Mask R-CNN"):
        summary = _full_model(rows, model)
        # Paper shape: Dual Sparse Implicit > Single Sparse Implicit >
        # Dense Implicit (baseline), and explicit variants trail implicit.
        assert summary["Dual Sparse Implicit"] > summary["Single Sparse Implicit"] > 1.0
        assert summary["Dense Explicit"] < 1.0
        assert summary["Dual Sparse Implicit"] > 1.8


def test_fig22_nlp_models(one_shot):
    rows = one_shot(run_fig22, models=("BERT-base Encoder", "RNN"))
    for model in ("BERT-base Encoder", "RNN"):
        summary = _full_model(rows, model)
        assert summary["Dual Sparse GEMM"] > summary["Single Sparse GEMM"] > 1.0
    # The RNN's >90% weight sparsity pushes well past the Sparse Tensor
    # Core's fixed 75% limit (paper: 3.6-8.45x).
    assert _full_model(rows, "RNN")["Dual Sparse GEMM"] > 3.0
