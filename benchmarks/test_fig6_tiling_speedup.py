"""Benchmark: Figure 6 — tiling lets speedup exceed the quantised levels."""

from repro.experiments.fig6_tiling_speedup import run_fig6


def test_fig6_tiling_speedup(one_shot):
    rows = one_shot(run_fig6, size=256)
    by_label = {row["distribution"]: row for row in rows}
    uniform = by_label["uniform"]["instruction_speedup"]
    imbalanced = by_label["imbalanced (Figure 6)"]["instruction_speedup"]
    # Paper example: ~37.5% average sparsity still yields ~1.3x once the
    # non-zeros are unevenly distributed across warps.
    assert imbalanced > uniform
    assert imbalanced > 1.25
