"""Benchmark: regenerate Table IV (area and power overhead)."""

from repro.experiments.table4_overhead import run_table4


def test_table4_overhead(benchmark):
    rows = benchmark(run_table4)
    by_module = {row["module"]: row for row in rows}
    total = by_module["Total overhead on V100"]
    assert abs(total["area_mm2"] - 12.846) < 0.5
    assert abs(total["power_w"] - 3.89) < 0.3
    fraction = by_module["Fraction of V100"]
    assert fraction["area_mm2"] < 0.02  # ~1.5% of the die
    assert fraction["power_w"] < 0.02
