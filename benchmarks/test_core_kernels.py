"""Micro-benchmarks of the core functional kernels themselves.

These measure the Python implementation (useful to track regressions of
the simulator's own speed) while asserting numerical correctness against
the dense references.
"""

import numpy as np

from repro.core.im2col_bitmap import bitmap_im2col
from repro.core.im2col_dense import dense_im2col
from repro.core.reference import reference_conv2d, reference_gemm
from repro.core.spconv import sparse_conv2d
from repro.core.spgemm_device import count_device_instructions, device_spgemm
from repro.sparsity.generators import random_sparse_matrix


def test_bench_functional_device_spgemm(benchmark):
    rng = np.random.default_rng(0)
    a = random_sparse_matrix((128, 96), 0.3, rng)
    b = random_sparse_matrix((96, 128), 0.2, rng)
    result = benchmark(device_spgemm, a, b)
    assert np.allclose(result.output, reference_gemm(a, b))


def test_bench_instruction_counter_large(benchmark):
    rng = np.random.default_rng(1)
    a = random_sparse_matrix((1024, 1024), 0.3, rng)
    b = random_sparse_matrix((1024, 1024), 0.1, rng)
    counts = benchmark(count_device_instructions, a, b)
    assert counts.instruction_speedup > 1.5


def test_bench_bitmap_im2col(benchmark):
    rng = np.random.default_rng(2)
    fm = random_sparse_matrix((16 * 28, 28), 0.4, rng).reshape(16, 28, 28)
    result = benchmark(bitmap_im2col, fm, 3, 1, 1)
    dense_lowered, _ = dense_im2col(fm, 3, 1, 1)
    assert np.allclose(result.lowered, dense_lowered)


def test_bench_sparse_conv2d(benchmark):
    rng = np.random.default_rng(3)
    fm = random_sparse_matrix((8 * 16, 16), 0.4, rng).reshape(8, 16, 16)
    weights = random_sparse_matrix((16, 8 * 9), 0.25, rng).reshape(16, 8, 3, 3)
    result = benchmark(sparse_conv2d, fm, weights, 1, 1)
    assert np.allclose(result.output, reference_conv2d(fm, weights, 1, 1))
