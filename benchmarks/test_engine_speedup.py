"""Vectorized-engine speedup over the reference loop (512x512x512 SpGEMM).

Times both functional backends on the same pruned-DNN-like workload
(90% sparse operands), asserts that the vectorized engine keeps its
>= 10x advantage and that the two paths stay bit-identical, and appends
the measurement to the JSON trajectory at
``benchmarks/results/engine_speedup.json`` so speedup history survives
across runs.
"""

from __future__ import annotations

import json
import time
from datetime import datetime, timezone
from pathlib import Path

import numpy as np

from repro.core.spgemm_device import device_spgemm
from repro.sparsity.generators import random_sparse_matrix

SIZE = 512
DENSITY = 0.1
MIN_SPEEDUP = 10.0
TRAJECTORY_PATH = Path(__file__).parent / "results" / "engine_speedup.json"


def _timed(func) -> float:
    """Wall-clock seconds of one call."""
    start = time.perf_counter()
    func()
    return time.perf_counter() - start


def _append_trajectory(row: dict) -> None:
    """Append one measurement to the bench JSON trajectory."""
    TRAJECTORY_PATH.parent.mkdir(parents=True, exist_ok=True)
    if TRAJECTORY_PATH.exists():
        trajectory = json.loads(TRAJECTORY_PATH.read_text())
    else:
        trajectory = []
    trajectory.append(row)
    TRAJECTORY_PATH.write_text(json.dumps(trajectory, indent=2) + "\n")


def test_bench_engine_speedup_512(benchmark):
    rng = np.random.default_rng(2021)
    a = random_sparse_matrix((SIZE, SIZE), DENSITY, rng)
    b = random_sparse_matrix((SIZE, SIZE), DENSITY, rng)

    start = time.perf_counter()
    reference = device_spgemm(a, b, backend="reference")
    reference_seconds = time.perf_counter() - start

    # Pin backend="vectorized": this benchmark gates the per-step
    # engine's bit-identity with the reference loop; the default "auto"
    # routes a 512^3 product to the blocked engine (benchmarked
    # separately in test_blocked_engine_speedup.py).
    vectorized = benchmark(device_spgemm, a, b, backend="vectorized")
    # Best-of-N wall clock for the assertion below: a single ~30 ms
    # sample is too exposed to scheduler noise for a hard CI gate.
    vectorized_seconds = min(
        _timed(lambda: device_spgemm(a, b, backend="vectorized"))
        for _ in range(5)
    )

    assert np.array_equal(reference.output, vectorized.output)
    assert reference.stats == vectorized.stats

    speedup = reference_seconds / vectorized_seconds
    _append_trajectory(
        {
            "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
            "workload": f"spgemm {SIZE}x{SIZE}x{SIZE}",
            "density": DENSITY,
            "reference_seconds": round(reference_seconds, 4),
            "vectorized_seconds": round(vectorized_seconds, 4),
            "speedup": round(speedup, 2),
        }
    )
    assert speedup >= MIN_SPEEDUP, (
        f"vectorized engine only {speedup:.1f}x faster than the reference "
        f"loop (required: {MIN_SPEEDUP:.0f}x)"
    )
