"""Benchmark: regenerate Figure 21 (SpGEMM time vs operand sparsity).

Workload: 4096x4096x4096 GEMM, A sparsity 0-99.9%, several B-sparsity
curves, across CUTLASS / cuSparse / Sparse Tensor Core / ours.
"""

from repro.experiments.fig21_spgemm import run_fig21


def _ours(rows, a_sparsity, b_sparsity):
    return next(
        row
        for row in rows
        if row["method"].startswith("Dual")
        and row["a_sparsity"] == a_sparsity
        and row["b_sparsity"] == b_sparsity
    )


def test_fig21_full_size_sweep(one_shot):
    rows = one_shot(run_fig21, size=4096)
    cutlass = next(row for row in rows if row["method"] == "CUTLASS")
    sparse_tc = next(row for row in rows if row["method"] == "Sparse Tensor Core")

    # Paper shapes: Sparse TC flat ~1.86x; ours loses slightly at dense-dense,
    # crosses over around 25-40% single-side sparsity, and exceeds an order
    # of magnitude at extreme dual-side sparsity, beating every baseline.
    assert abs(sparse_tc["speedup_vs_cutlass"] - 1.86) < 0.2
    assert _ours(rows, 0.0, 0.0)["speedup_vs_cutlass"] < 1.0
    assert _ours(rows, 0.4, 0.0)["speedup_vs_cutlass"] > 1.0
    assert _ours(rows, 0.999, 0.99)["speedup_vs_cutlass"] > 10.0
    best_baseline = min(
        row["time_us"]
        for row in rows
        # Baselines only: exclude our modelled curves ("Dual...") and the
        # executed numeric point ("ours-functional ...").
        if not row["method"].startswith(("Dual", "ours"))
    )
    assert _ours(rows, 0.99, 0.99)["time_us"] < best_baseline
    assert cutlass["speedup_vs_cutlass"] == 1.0


def test_fig21_exact_counting_path_medium_gemm(one_shot, rng=None):
    """Exact (non-statistical) instruction counting on a 2048-sized GEMM."""
    import numpy as np

    from repro.kernels.gemm_dense import CutlassGemm
    from repro.kernels.gemm_dual_sparse import DualSparseGemm
    from repro.sparsity.generators import random_sparse_matrix

    generator = np.random.default_rng(0)
    a = random_sparse_matrix((2048, 2048), 0.3, generator)
    b = random_sparse_matrix((2048, 2048), 0.1, generator)
    estimate = one_shot(DualSparseGemm().estimate, a, b)
    baseline = CutlassGemm().estimate_from_shape(2048, 2048, 2048)
    assert baseline.time_us / estimate.time_us > 2.0
