"""Wall-clock latency of the live socket serving front-end.

Boots an in-process :class:`repro.serving.server.ServingServer` on a
loopback TCP socket serving the demo zoo, pipelines a burst of requests
through the real protocol client, and appends one trajectory row to
``benchmarks/results/serve_throughput.json`` with the observed
requests/sec and exact nearest-rank latency percentiles (p50/p95/p99,
from the per-request ``latency_ms`` the server reports — arrival to
terminal response, including queueing).

Deliberately **ungated**: wall-clock latency through a socket is
load-sensitive, so this row records the trajectory without a flaky
speedup threshold.  Correctness is still asserted hard — every request
completes and every completed digest is bit-identical to the per-image
functional oracle.
"""

from __future__ import annotations

import json
import time
from datetime import datetime, timezone
from pathlib import Path

from repro.experiments.serve_live import SoakConfig, oracle_digests
from repro.serving.client import ServingClient
from repro.serving.pool import SessionPool
from repro.serving.server import ServingServer, demo_definitions
from repro.serving.stats import LatencyRecorder

SEED = 2021
REQUESTS = 32
IMAGES = 4
TRAJECTORY_PATH = Path(__file__).parent / "results" / "serve_throughput.json"


def _append_trajectory(row: dict) -> None:
    """Append one measurement to the bench JSON trajectory."""
    TRAJECTORY_PATH.parent.mkdir(parents=True, exist_ok=True)
    if TRAJECTORY_PATH.exists():
        trajectory = json.loads(TRAJECTORY_PATH.read_text())
    else:
        trajectory = []
    trajectory.append(row)
    TRAJECTORY_PATH.write_text(json.dumps(trajectory, indent=2) + "\n")


def test_bench_live_socket_latency(one_shot):
    definitions = demo_definitions()
    models = tuple(definitions)
    oracle = oracle_digests(SoakConfig(seed=SEED, images=IMAGES))
    pool = SessionPool(seed=SEED, definitions=definitions)
    server = ServingServer(
        pool,
        address=("127.0.0.1", 0),
        models=models,
        batch_cap=4,
        deadline_ms=10.0,
        queue_depth=REQUESTS,  # the whole burst fits: no shed rejections
        workers=2,
    )
    server.start(warm=True)  # compile + warm outside the timed region
    client = ServingClient(server.address, client="bench")
    try:
        def serve():
            request_ids = []
            for number in range(REQUESTS):
                rid = f"bench-{number}"
                client.send_request(
                    rid, models[number % len(models)], number % IMAGES
                )
                request_ids.append(rid)
            return client.collect(request_ids)

        wall_start = time.perf_counter()
        responses = one_shot(serve)
        wall_seconds = time.perf_counter() - wall_start

        assert len(responses) == REQUESTS
        recorder = LatencyRecorder()
        for response in responses.values():
            assert response["status"] == "completed", response
            key = (response["model"], response["image"])
            assert response["digest"] == oracle[key], response["id"]
            recorder.record(float(response["latency_ms"]) * 1000.0)
        summary = recorder.summary()
    finally:
        client.close()
        server.shutdown()

    _append_trajectory(
        {
            "timestamp": datetime.now(timezone.utc).isoformat(
                timespec="seconds"
            ),
            "workload": (
                f"live-socket demo zoo requests={REQUESTS} batch_cap=4 "
                "workers=2"
            ),
            "wall_seconds": round(wall_seconds, 4),
            "requests_per_sec": round(REQUESTS / wall_seconds, 3),
            "p50_latency_ms": round(summary["p50_latency_us"] / 1000.0, 3),
            "p95_latency_ms": round(summary["p95_latency_us"] / 1000.0, 3),
            "p99_latency_ms": round(summary["p99_latency_us"] / 1000.0, 3),
            "max_latency_ms": round(summary["max_latency_us"] / 1000.0, 3),
        }
    )
    assert summary["latency_count"] == REQUESTS
    assert summary["p50_latency_us"] <= summary["p99_latency_us"]
