"""Benchmark: regenerate Table III (dense vs CSR vs bitmap im2col).

Workload: the paper's ResNet-18 layer (56x56 feature map, 3x3 kernel,
128 channels) swept over feature-map sparsity 0-99.9%.
"""

from repro.experiments.table3_im2col import PAPER_BITMAP, PAPER_CSR, run_table3


def test_table3_im2col_full_layer(one_shot):
    rows = one_shot(run_table3)
    assert len(rows) == 6
    low_sparsity = rows[0]
    # Paper shape: CSR is ~2 orders of magnitude slower than dense and
    # ~one order of magnitude slower than bitmap at low sparsity.
    assert low_sparsity["csr_im2col"] > 50
    assert low_sparsity["csr_im2col"] > 10 * low_sparsity["bitmap_im2col"]
    # Both collapse towards the dense cost at 99.9% sparsity.
    assert rows[-1]["csr_im2col"] < 3.0
    assert rows[-1]["bitmap_im2col"] < 1.5


def test_table3_matches_paper_within_2x(one_shot):
    rows = one_shot(run_table3, scale=0.5)
    from repro.experiments.table3_im2col import SPARSITY_POINTS

    for row, sparsity in zip(rows, SPARSITY_POINTS):
        assert abs(row["csr_im2col"] - PAPER_CSR[sparsity]) <= PAPER_CSR[sparsity]
        assert (
            abs(row["bitmap_im2col"] - PAPER_BITMAP[sparsity]) <= PAPER_BITMAP[sparsity]
        )
