"""Benchmark: Figure 5 — warp-level OHMMA skipping micro-experiment."""

from repro.experiments.fig5_warp_skipping import run_fig5


def test_fig5_warp_skipping(benchmark):
    rows = benchmark(run_fig5)
    dense = next(r for r in rows if r["a_sparsity"] == 0 and r["b_sparsity"] == 0)
    sparse = next(r for r in rows if r["a_sparsity"] == 0.75 and r["b_sparsity"] == 0.5)
    assert dense["instruction_speedup"] == 1.0
    assert sparse["instruction_speedup"] > 2.0
    # The ISA expansion and the algorithm-level counter must agree.
    assert all(r["ohmma_issued"] == r["spwmma_enabled"] for r in rows)
