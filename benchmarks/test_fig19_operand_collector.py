"""Benchmark: Figures 18/19 — accumulation-buffer operand collector."""

from repro.experiments.fig19_operand_collector import run_fig19


def test_fig19_operand_collector(benchmark):
    rows = benchmark(run_fig19)
    sparse_rows = [row for row in rows if row["mode"].startswith("sparse")]
    assert all(row["collector_speedup"] > 1.0 for row in sparse_rows)
    dense = next(row for row in rows if row["mode"].startswith("dense"))
    assert dense["collector_speedup"] == 1.0
