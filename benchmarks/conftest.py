"""Benchmark-harness configuration.

Each benchmark regenerates one of the paper's tables or figures (plus a
few ablations) via the drivers in :mod:`repro.experiments`, asserts the
qualitative shape the paper reports, and reports wall-clock time through
pytest-benchmark.  Heavy sweeps run with a single round so the whole
harness stays in the minutes range.
"""

import pytest


@pytest.fixture
def one_shot(benchmark):
    """Run a callable exactly once under the benchmark timer."""

    def _run(func, *args, **kwargs):
        return benchmark.pedantic(
            func, args=args, kwargs=kwargs, rounds=1, iterations=1, warmup_rounds=0
        )

    return _run
