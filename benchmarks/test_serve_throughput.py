"""Serving throughput of compiled sessions vs the per-image loop.

Compiles a full-resolution ResNet-18 session, serves a batch of 8
images, and times it against the status-quo workflow — one
``run_model_functional`` call per image, which re-materialises the
pruned weights and re-derives every weight-side encoding per call.
Asserts the >= 3x images/sec advantage with *bit-identical* per-image
outputs and statistics, and appends the measurements to the JSON
trajectory at ``benchmarks/results/serve_throughput.json``.

The session is compiled (and its lazy engine caches warmed by a
single-image run) outside the timed region — that is the point of the
session API: encoding is paid once per deployment, not per request.
Operand memoization is disabled so the timed batch regenerates its
activations exactly like the baseline loop does.

A second, ungated pass serves the *whole* model zoo
(:data:`repro.nn.models.DEFAULT_MODELS`) and appends one images/sec
trajectory row per model, each batch asserted bit-identical to its
per-image oracle.
"""

from __future__ import annotations

import json
import time
from datetime import datetime, timezone
from pathlib import Path

import numpy as np

from repro.nn.functional import run_model_functional
from repro.nn.models import DEFAULT_MODELS
from repro.nn.session import compile_model

MODEL = "ResNet-18"
BATCH = 8
SEED = 2021
MIN_SPEEDUP = 3.0
TRAJECTORY_PATH = Path(__file__).parent / "results" / "serve_throughput.json"

#: Whole-zoo pass: batch served per model and per-model data scales.
#: Everything runs full-resolution except Mask R-CNN, whose 1333x800
#: layers cost ~20 s/image — 0.25 keeps the zoo pass in the seconds
#: range while still serving its paper-shaped weight matrices.
ZOO_BATCH = 2
ZOO_SCALES = {"Mask R-CNN": 0.25}


def _append_trajectory(row: dict) -> None:
    """Append one measurement to the bench JSON trajectory."""
    TRAJECTORY_PATH.parent.mkdir(parents=True, exist_ok=True)
    if TRAJECTORY_PATH.exists():
        trajectory = json.loads(TRAJECTORY_PATH.read_text())
    else:
        trajectory = []
    trajectory.append(row)
    TRAJECTORY_PATH.write_text(json.dumps(trajectory, indent=2) + "\n")


def test_bench_serve_throughput(benchmark):
    compile_start = time.perf_counter()
    compiled = compile_model(MODEL, scale=1.0, seed=SEED, memo=False)
    compile_seconds = time.perf_counter() - compile_start
    compiled.run(1)  # warm the lazy per-layer engine caches

    # Best-of-2 for the gated wall clock; a single sample is too exposed
    # to scheduler noise for a hard CI assertion.
    session_seconds = float("inf")
    run = None
    for _ in range(2):
        started = time.perf_counter()
        candidate = compiled.run(BATCH)
        elapsed = time.perf_counter() - started
        if elapsed < session_seconds:
            session_seconds, run = elapsed, candidate

    baseline_start = time.perf_counter()
    baseline = [
        run_model_functional(
            MODEL, scale=1.0, seed=SEED, image=image, keep_outputs=True
        )
        for image in range(BATCH)
    ]
    baseline_seconds = time.perf_counter() - baseline_start

    # The folded batch must be indistinguishable from the per-image loop:
    # same numeric outputs bit for bit, same value in every stats field.
    for image in range(BATCH):
        expected = baseline[image]
        actual = run.per_image[image]
        for exp, got in zip(expected.layers, actual.layers):
            assert exp.stats == got.stats, exp.layer
            assert np.array_equal(exp.output, got.output), exp.layer

    # pytest-benchmark stats for a smaller steady-state batch.
    benchmark(compiled.run, 2)

    speedup = baseline_seconds / session_seconds
    _append_trajectory(
        {
            "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
            "workload": f"{MODEL} scale=1.0 batch={BATCH}",
            "compile_seconds": round(compile_seconds, 4),
            "session_seconds": round(session_seconds, 4),
            "session_images_per_sec": round(BATCH / session_seconds, 3),
            "baseline_seconds": round(baseline_seconds, 4),
            "baseline_images_per_sec": round(BATCH / baseline_seconds, 3),
            "speedup": round(speedup, 2),
        }
    )
    assert speedup >= MIN_SPEEDUP, (
        f"compiled session only {speedup:.2f}x faster than the per-image "
        f"run_model_functional loop at batch {BATCH} "
        f"(required: {MIN_SPEEDUP:.0f}x)"
    )


def test_bench_zoo_throughput(one_shot):
    """Serve the whole model zoo and record images/sec per model.

    Unlike the gated ResNet-18 benchmark above, this pass has no hard
    speedup threshold — its job is coverage (every zoo model compiles
    and serves through the encoded-operand session, bit-identical to the
    per-image oracle) and the per-model throughput trajectory rows.
    """
    rows = []

    def serve_zoo():
        for model in DEFAULT_MODELS:
            scale = ZOO_SCALES.get(model, 1.0)
            compile_start = time.perf_counter()
            compiled = compile_model(model, scale=scale, seed=SEED, memo=False)
            compile_seconds = time.perf_counter() - compile_start
            compiled.run(1)  # warm the lazy per-layer engine caches
            started = time.perf_counter()
            run = compiled.run(ZOO_BATCH)
            session_seconds = time.perf_counter() - started

            oracle = run_model_functional(
                model, scale=scale, seed=SEED, image=1, keep_outputs=True
            )
            for exp, got in zip(oracle.layers, run.per_image[1].layers):
                assert exp.stats == got.stats, f"{model}/{exp.layer}"
                assert np.array_equal(exp.output, got.output), (
                    f"{model}/{exp.layer}"
                )
            rows.append(
                {
                    "timestamp": datetime.now(timezone.utc).isoformat(
                        timespec="seconds"
                    ),
                    "workload": f"zoo {model} scale={scale} batch={ZOO_BATCH}",
                    "compile_seconds": round(compile_seconds, 4),
                    "session_seconds": round(session_seconds, 4),
                    "session_images_per_sec": round(
                        ZOO_BATCH / session_seconds, 3
                    ),
                }
            )

    one_shot(serve_zoo)
    assert len(rows) == len(DEFAULT_MODELS)
    for row in rows:
        assert row["session_images_per_sec"] > 0
        _append_trajectory(row)
