"""Serving throughput of compiled sessions vs the per-image loop.

Compiles a full-resolution ResNet-18 session, serves a batch of 8
images, and times it against the status-quo workflow — one
``run_model_functional`` call per image, which re-materialises the
pruned weights and re-derives every weight-side encoding per call.
Asserts the >= 3x images/sec advantage with *bit-identical* per-image
outputs and statistics, and appends the measurements to the JSON
trajectory at ``benchmarks/results/serve_throughput.json``.

The session is compiled (and its lazy engine caches warmed by a
single-image run) outside the timed region — that is the point of the
session API: encoding is paid once per deployment, not per request.
Operand memoization is disabled so the timed batch regenerates its
activations exactly like the baseline loop does.

A second, ungated pass serves the *whole* model zoo
(:data:`repro.nn.models.DEFAULT_MODELS`) and appends one images/sec
trajectory row per model, each batch asserted bit-identical to its
per-image oracle.
"""

from __future__ import annotations

import json
import time
from datetime import datetime, timezone
from pathlib import Path

import numpy as np

from repro.nn.functional import run_model_functional
from repro.nn.models import DEFAULT_MODELS, get_benchmark_scale
from repro.nn.session import compile_model
from repro.serving import Request, ServingDaemon, SessionPool

MODEL = "ResNet-18"
BATCH = 8
SEED = 2021
MIN_SPEEDUP = 3.0
TRAJECTORY_PATH = Path(__file__).parent / "results" / "serve_throughput.json"

#: Whole-zoo pass: batch served per model; per-model data scales come
#: from the zoo's ``benchmark_scale`` metadata (Mask R-CNN runs reduced
#: because its full-resolution layers cost ~20 s/image).
ZOO_BATCH = 2


def _append_trajectory(row: dict) -> None:
    """Append one measurement to the bench JSON trajectory."""
    TRAJECTORY_PATH.parent.mkdir(parents=True, exist_ok=True)
    if TRAJECTORY_PATH.exists():
        trajectory = json.loads(TRAJECTORY_PATH.read_text())
    else:
        trajectory = []
    trajectory.append(row)
    TRAJECTORY_PATH.write_text(json.dumps(trajectory, indent=2) + "\n")


def test_bench_serve_throughput(benchmark):
    compile_start = time.perf_counter()
    compiled = compile_model(MODEL, scale=1.0, seed=SEED, memo=False)
    compile_seconds = time.perf_counter() - compile_start
    compiled.run(1)  # warm the lazy per-layer engine caches

    # Best-of-2 for the gated wall clock; a single sample is too exposed
    # to scheduler noise for a hard CI assertion.
    session_seconds = float("inf")
    run = None
    for _ in range(2):
        started = time.perf_counter()
        candidate = compiled.run(BATCH)
        elapsed = time.perf_counter() - started
        if elapsed < session_seconds:
            session_seconds, run = elapsed, candidate

    baseline_start = time.perf_counter()
    baseline = [
        run_model_functional(
            MODEL, scale=1.0, seed=SEED, image=image, keep_outputs=True
        )
        for image in range(BATCH)
    ]
    baseline_seconds = time.perf_counter() - baseline_start

    # The folded batch must be indistinguishable from the per-image loop:
    # same numeric outputs bit for bit, same value in every stats field.
    for image in range(BATCH):
        expected = baseline[image]
        actual = run.per_image[image]
        for exp, got in zip(expected.layers, actual.layers):
            assert exp.stats == got.stats, exp.layer
            assert np.array_equal(exp.output, got.output), exp.layer

    # pytest-benchmark stats for a smaller steady-state batch.
    benchmark(compiled.run, 2)

    speedup = baseline_seconds / session_seconds
    _append_trajectory(
        {
            "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
            "workload": f"{MODEL} scale=1.0 batch={BATCH}",
            "compile_seconds": round(compile_seconds, 4),
            "session_seconds": round(session_seconds, 4),
            "session_images_per_sec": round(BATCH / session_seconds, 3),
            "baseline_seconds": round(baseline_seconds, 4),
            "baseline_images_per_sec": round(BATCH / baseline_seconds, 3),
            "speedup": round(speedup, 2),
        }
    )
    assert speedup >= MIN_SPEEDUP, (
        f"compiled session only {speedup:.2f}x faster than the per-image "
        f"run_model_functional loop at batch {BATCH} "
        f"(required: {MIN_SPEEDUP:.0f}x)"
    )


def test_bench_zoo_throughput(one_shot):
    """Serve the whole model zoo and record images/sec per model.

    Unlike the gated ResNet-18 benchmark above, this pass has no hard
    speedup threshold — its job is coverage (every zoo model compiles
    and serves through the encoded-operand session, bit-identical to the
    per-image oracle) and the per-model throughput trajectory rows.
    """
    rows = []

    def serve_zoo():
        for model in DEFAULT_MODELS:
            scale = get_benchmark_scale(model)
            compile_start = time.perf_counter()
            compiled = compile_model(model, scale=scale, seed=SEED, memo=False)
            compile_seconds = time.perf_counter() - compile_start
            compiled.run(1)  # warm the lazy per-layer engine caches
            started = time.perf_counter()
            run = compiled.run(ZOO_BATCH)
            session_seconds = time.perf_counter() - started

            oracle = run_model_functional(
                model, scale=scale, seed=SEED, image=1, keep_outputs=True
            )
            for exp, got in zip(oracle.layers, run.per_image[1].layers):
                assert exp.stats == got.stats, f"{model}/{exp.layer}"
                assert np.array_equal(exp.output, got.output), (
                    f"{model}/{exp.layer}"
                )
            rows.append(
                {
                    "timestamp": datetime.now(timezone.utc).isoformat(
                        timespec="seconds"
                    ),
                    "workload": f"zoo {model} scale={scale} batch={ZOO_BATCH}",
                    "compile_seconds": round(compile_seconds, 4),
                    "session_seconds": round(session_seconds, 4),
                    "session_images_per_sec": round(
                        ZOO_BATCH / session_seconds, 3
                    ),
                }
            )

    one_shot(serve_zoo)
    assert len(rows) == len(DEFAULT_MODELS)
    for row in rows:
        assert row["session_images_per_sec"] > 0
        _append_trajectory(row)


def test_bench_daemon_slo(one_shot):
    """Tail-latency SLO row for the serving daemon, same 3x gate.

    A same-instant burst of 8 requests flushes as one full batch, so the
    daemon's *wall* execute time is directly comparable to the gated
    session benchmark above: the batching/queueing machinery must keep
    the >= 3x advantage over the per-image baseline loop.  The appended
    trajectory row adds the daemon's virtual-time tail latencies (exact
    nearest-rank p50/p99) on top of the wall-clock throughput columns.
    """
    pool = SessionPool(scale=1.0, seed=SEED, memo=False)
    pool.session(MODEL).run(1)  # compile + warm outside the timed region

    requests = tuple(
        Request(f"slo{i:02d}", MODEL, i, arrival_us=0.0) for i in range(BATCH)
    )

    def serve():
        # Best-of-2 on the wall execute clock, like the gated benchmark.
        best = None
        for _ in range(2):
            daemon = ServingDaemon(
                pool, batch_cap=BATCH, deadline_us=1_000.0,
                queue_depth=BATCH, workers=1,
            )
            candidate = daemon.run(requests)
            if best is None or (
                candidate.wall_execute_seconds < best.wall_execute_seconds
            ):
                best = candidate
        return best

    report = one_shot(serve)
    assert len(report.completed) == BATCH
    assert report.rejected == () and report.failed == ()
    assert len(report.batches) == 1 and report.batches[0].flush_cause == "full"

    baseline_start = time.perf_counter()
    baseline = [
        run_model_functional(
            MODEL, scale=1.0, seed=SEED, image=image, keep_outputs=True
        )
        for image in range(BATCH)
    ]
    baseline_seconds = time.perf_counter() - baseline_start

    # Responses carry the real per-image runs, bit-identical to the loop.
    by_id = report.by_id()
    for image in range(BATCH):
        expected = baseline[image]
        actual = by_id[f"slo{image:02d}"].result
        for exp, got in zip(expected.layers, actual.layers):
            assert exp.stats == got.stats, exp.layer
            assert np.array_equal(exp.output, got.output), exp.layer

    daemon_seconds = report.wall_execute_seconds
    speedup = baseline_seconds / daemon_seconds
    _append_trajectory(
        {
            "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
            "workload": f"daemon {MODEL} scale=1.0 batch={BATCH}",
            "daemon_seconds": round(daemon_seconds, 4),
            "daemon_images_per_sec": round(BATCH / daemon_seconds, 3),
            "baseline_seconds": round(baseline_seconds, 4),
            "baseline_images_per_sec": round(BATCH / baseline_seconds, 3),
            "speedup": round(speedup, 2),
            "p50_latency_us": round(report.latency.percentile(50.0), 3),
            "p99_latency_us": round(report.latency.percentile(99.0), 3),
        }
    )
    assert report.latency.percentile(50.0) <= report.latency.percentile(99.0)
    assert speedup >= MIN_SPEEDUP, (
        f"serving daemon only {speedup:.2f}x faster than the per-image "
        f"run_model_functional loop at batch {BATCH} "
        f"(required: {MIN_SPEEDUP:.0f}x)"
    )
