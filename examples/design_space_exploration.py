"""Design-space exploration: accumulation buffer size vs. area and speed.

The warp-tile size of the proposed SpGEMM is bounded by the accumulation
buffer that keeps the whole output tile next to the FEOP units
(Section III-B3).  This example sweeps the buffer capacity, derives the
corresponding warp-tile geometry, and reports

* the silicon cost of the buffer (Table IV's methodology), and
* the instruction-level speedup the geometry reaches on a reference
  sparse workload,

illustrating why the paper settles on the 4 KiB / 32x32 design point.

Run with::

    python examples/design_space_exploration.py
"""

from __future__ import annotations

import numpy as np

from repro.core.spgemm_device import count_device_instructions
from repro.core.spgemm_warp import WarpTileConfig
from repro.experiments.report import format_rows
from repro.hw.area_model import AreaPowerModel
from repro.sparsity.generators import random_sparse_matrix


def main() -> None:
    rng = np.random.default_rng(3)
    activations = random_sparse_matrix((512, 512), density=0.4, rng=rng)
    weights = random_sparse_matrix((512, 512), density=0.15, rng=rng)
    area_model = AreaPowerModel()

    rows = []
    for tile in (8, 16, 32, 64):
        buffer_kb = tile * tile * 4 / 1024.0
        config = WarpTileConfig(tm=tile, tn=tile, tk=16)
        counts = count_device_instructions(activations, weights, config=config)
        buffer = area_model.shared_accumulation_buffer(buffer_kb)
        rows.append(
            {
                "warp_tile": f"{tile}x{tile}",
                "buffer_kib_per_subcore": buffer_kb,
                "buffer_area_mm2_total": buffer.area_mm2,
                "instruction_speedup": counts.instruction_speedup,
                "warp_tile_pairs_skipped": counts.warp_tile_pairs_skipped,
            }
        )
    print(
        format_rows(
            rows,
            title="Accumulation-buffer design space (A 60% sparse, B 85% sparse)",
        )
    )
    print(
        "\nLarger warp tiles skip more work because condensing operates on longer "
        "vectors, but the accumulation buffer area grows quadratically with the "
        "tile edge (and past 4 KiB it no longer fits next to the Tensor Core's "
        "output path).  The paper's 32x32 / 4 KiB point is the largest tile whose "
        "buffer still costs ~1.4% of the die."
    )


if __name__ == "__main__":
    main()
