"""BERT encoder speedup study on the modelled dual-side sparse Tensor Core.

The workload the paper's introduction motivates: a movement-pruned
BERT-base encoder serving SQuAD queries.  For every GEMM of one encoder
block the example compares the three execution methods of Figure 22
(dense CUTLASS, the weight-only Sparse Tensor Core, and our dual-side
design) and prints the layer-wise and block-level speedups.

Run with::

    python examples/bert_layer_speedup.py
"""

from __future__ import annotations

from repro.experiments.report import format_rows
from repro.nn.inference import ModelEvaluator
from repro.nn.models import get_model


def main() -> None:
    model = get_model("BERT-base Encoder")
    evaluator = ModelEvaluator(seed=7)
    result = evaluator.evaluate(model)

    rows = []
    for layer_result in result.layer_results:
        for method, estimate in layer_result.estimates.items():
            rows.append(
                {
                    "layer": layer_result.layer,
                    "method": method,
                    "time_us": estimate.time_us,
                    "speedup": layer_result.speedup(method),
                }
            )
    print(format_rows(rows, title="BERT-base encoder block (movement pruned, SQuAD)"))

    print("\nfull-block speedups over Dense GEMM:")
    for method, speedup in result.summary().items():
        print(f"  {method:<22s} {speedup:.2f}x")


if __name__ == "__main__":
    main()
