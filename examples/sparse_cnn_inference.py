"""Sparse CNN inference: AGP-pruned convolutions over a ReLU-sparse input.

This example builds a small three-layer CNN, prunes its weights with the
AGP schedule, and pushes a feature map through the functional dual-side
sparse convolution pipeline layer by layer.  After every layer it reports
the naturally occurring activation sparsity (from ReLU) and the
instruction-level speedup the dual-side sparse Tensor Core extracts, and
finally cross-checks the whole network against a dense reference.

Run with::

    python examples/sparse_cnn_inference.py
"""

from __future__ import annotations

import numpy as np

from repro.core.reference import reference_conv2d
from repro.nn.activations import measure_activation_sparsity, relu
from repro.nn.layers import Conv2dLayer
from repro.pruning.agp import agp_prune


def build_network(rng: np.random.Generator) -> list[Conv2dLayer]:
    """Three AGP-pruned convolution layers of growing width."""
    shapes = [
        ("conv1", 4, 8, 0.6),
        ("conv2", 8, 16, 0.75),
        ("conv3", 16, 16, 0.85),
    ]
    layers = []
    for name, c_in, c_out, target_sparsity in shapes:
        weights = rng.standard_normal((c_out, c_in, 3, 3))
        pruned = agp_prune(weights, final_sparsity=target_sparsity, steps=5)
        layers.append(Conv2dLayer(name=name, weights=pruned, stride=1, padding=1))
    return layers


def main() -> None:
    rng = np.random.default_rng(11)
    layers = build_network(rng)

    # A feature map biased negative so ReLU produces realistic sparsity.
    feature_map = rng.standard_normal((4, 24, 24)) - 0.3
    feature_map = relu(feature_map)

    print(f"input activation sparsity: {measure_activation_sparsity(feature_map):.2%}\n")

    for layer in layers:
        result = layer.forward(feature_map)

        # Cross-check against the dense reference convolution + ReLU.
        reference = np.maximum(
            reference_conv2d(feature_map, layer.weights, 1, 1), 0
        )
        assert np.allclose(result, reference), f"{layer.name}: mismatch vs reference"

        weight_sparsity = 1.0 - np.count_nonzero(layer.weights) / layer.weights.size
        print(f"{layer.name}:")
        print(f"  weight sparsity (AGP)     : {weight_sparsity:.2%}")
        print(f"  output activation sparsity: {measure_activation_sparsity(result):.2%}")
        feature_map = result

    print("\nall layers match the dense reference convolution")

    # Show what the accelerator would do for the final layer.
    from repro.core.spconv import sparse_conv2d

    last = layers[-1]
    stats = sparse_conv2d(feature_map, last.weights, 1, 1).stats
    print(
        f"\nfinal layer on the dual-side sparse Tensor Core: "
        f"{stats.gemm.instruction_speedup:.2f}x fewer OHMMA instructions, "
        f"{stats.gemm.tile_skip_fraction:.1%} warp-tile pairs skipped"
    )


if __name__ == "__main__":
    main()
