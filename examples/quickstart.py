"""Quickstart: dual-side sparse GEMM and convolution in a few lines.

Run with::

    python examples/quickstart.py

The example multiplies two sparse matrices and convolves a sparse feature
map with pruned weights using the library's functional pipeline, checks
the results against dense references and prints the instruction-level
statistics that the dual-side sparse Tensor Core would see.
"""

from __future__ import annotations

import numpy as np

from repro import SparseMatrix, spconv, spgemm
from repro.core.reference import reference_conv2d, reference_gemm
from repro.sparsity.generators import random_sparse_matrix


def main() -> None:
    rng = np.random.default_rng(7)

    # ------------------------------------------------------------------ #
    # 1. Dual-side sparse GEMM
    # ------------------------------------------------------------------ #
    activations = random_sparse_matrix((256, 192), density=0.4, rng=rng)
    weights = random_sparse_matrix((192, 128), density=0.15, rng=rng)

    a = SparseMatrix.from_dense(activations, order="col")
    b = SparseMatrix.from_dense(weights, order="row")
    result = spgemm(a, b)

    reference = reference_gemm(activations, weights)
    assert np.allclose(result.dense, reference), "SpGEMM result mismatch"

    print("SpGEMM 256x128x192")
    print(f"  A sparsity               : {a.sparsity:.2%}")
    print(f"  B sparsity               : {b.sparsity:.2%}")
    print(f"  OHMMA issued / dense      : {result.stats.warp.ohmma_issued} / "
          f"{result.stats.warp.ohmma_dense}")
    print(f"  instruction speedup       : {result.instruction_speedup:.2f}x")
    print(f"  warp tiles skipped        : {result.stats.tile_skip_fraction:.2%}")

    # ------------------------------------------------------------------ #
    # 2. Dual-side sparse convolution
    # ------------------------------------------------------------------ #
    feature_map = random_sparse_matrix((8 * 20, 20), density=0.35, rng=rng)
    feature_map = feature_map.reshape(8, 20, 20)
    conv_weights = random_sparse_matrix((16, 8 * 9), density=0.25, rng=rng)
    conv_weights = conv_weights.reshape(16, 8, 3, 3)

    conv = spconv(feature_map, conv_weights, stride=1, padding=1)
    conv_reference = reference_conv2d(feature_map, conv_weights, stride=1, padding=1)
    assert np.allclose(conv.output, conv_reference), "SpCONV result mismatch"

    print("\nSpCONV 8x20x20 -> 16x20x20 (3x3, pad 1)")
    print(f"  activation sparsity       : {conv.stats.activation_sparsity:.2%}")
    print(f"  weight sparsity           : {conv.stats.weight_sparsity:.2%}")
    print(f"  im2col register bit ops   : {conv.stats.im2col.register_ops}")
    print(f"  SpGEMM instruction speedup: {conv.stats.gemm.instruction_speedup:.2f}x")
    print("\nBoth results match the dense references.")


if __name__ == "__main__":
    main()
